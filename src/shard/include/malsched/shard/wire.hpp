#pragma once

/// \file wire.hpp
/// Length-prefixed wire protocol between the ShardRouter and its worker
/// processes.
///
/// Frame layout (everything on the wire is a frame):
///
///     ┌────────────────────┬──────────────────────────┐
///     │ length: u32 LE     │ payload: `length` bytes  │
///     └────────────────────┴──────────────────────────┘
///
/// Payloads are line-oriented text whose first token names the message type
/// — deliberately the same key=value grammar `write_results` emits, so the
/// human batch-output format and the wire format stay one dialect and
/// `parse_error_code` / `error_code_name` serve both.  Messages:
///
///   both directions, first frame of every new connection
///     hello malsched-wire <version> <role>
///
///   router → worker
///     instance <name>\n<P hexfloat> <n>\n<V δ w hexfloat per line>
///     solve <id> <token> <priority-weight hex> <deadline-seconds hex | -> <solver> <name>
///     ping <seq>
///     stats
///     drain
///
///   worker → router
///     result <id> token=<n> solver=<text> status=ok objective=<hex>
///            makespan=<hex> cache_hit=<0|1> latency=<hex>
///            \n<completions, hexfloat per line>
///     result <id> token=<n> solver=<text> status=error code=<error-code-name>
///            message="<escaped>" latency=<hex>
///     pong <seq>
///     stats hits=.. misses=.. evictions=.. expired=.. entries=.. weight=..
///           capacity=..
///     drained <results-delivered>
///
/// The `hello` frame is the versioned handshake: both sides send theirs
/// immediately on connect (write-then-read, so neither blocks on the other)
/// and validate the peer's before any other frame.  A garbage greeting, a
/// wrong magic or a different protocol version rejects the connection with
/// a typed `ProtocolMismatch` instead of mis-parsing frames — on a
/// multi-host fleet the peer is dialed over TCP and may be anything from an
/// old binary to a port scanner.
///
/// `solve` carries two identifiers on purpose: `id` names the wire exchange
/// (unique per frame, echoed by the matching result) while `token` names
/// the *request* and is stable across retries.  When a worker dies mid-solve
/// and the router replays the request on a primed replica, the retry is a
/// new exchange (`id` changes) for the same request (`token` does not) —
/// workers dedup on token so a request is solved effectively once, and the
/// router drops whichever duplicate result loses the race.
///
/// Numeric payload fields are hexadecimal floats (`%a` / strtod), so doubles
/// round-trip bit-exactly across the process boundary — the sharded-vs-
/// single bit-identical-output contract depends on it (12-digit decimal,
/// which the human result stream uses, does not round-trip).  `SolveError`
/// codes travel as their stable kebab-case names, so Cancelled /
/// DeadlineExceeded and friends mean the same thing on both sides of the
/// pipe.
///
/// The frame reader enforces a maximum payload size so a corrupted length
/// prefix fails the connection instead of a 4 GiB allocation.
///
/// --- dialects ---
///
/// The data-bearing messages (`instance`, `solve`, `result`) exist in two
/// encodings behind the same encode/decode API:
///
///   * Dialect::Text — the key=value hexfloat dialect above, shared with
///     the human result stream.  The TCP fleet and the socketpair data
///     plane speak it; the version-2 handshake is unchanged.
///   * Dialect::Binary — the shared-memory data plane's encoding: a tag
///     byte ≥ 0x80 (which no text message starts with), fixed-width
///     little-endian integers, and doubles as their raw IEEE-754 bits.
///     Bit-identical by construction — no format/parse round-trip at all —
///     and several times cheaper to encode/decode, which is the point on
///     the per-request hot path.
///
/// Decoders sniff the first byte, so a receiver accepts either dialect
/// without negotiation and `message_type` names binary payloads by the
/// same strings ("instance"/"solve"/"result").  Control messages (hello,
/// ping, stats, drain) are text-only: they ride the socketpair control
/// plane, never the rings.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "malsched/core/instance.hpp"
#include "malsched/net/frame.hpp"
#include "malsched/service/cache.hpp"
#include "malsched/service/solver_registry.hpp"

namespace malsched::shard::wire {

/// Frame transport (length prefix, dead-peer classification, deadline
/// reads) lives in malsched/net/frame.hpp; re-exported here so the wire
/// dialect and its framing stay one API for callers.
using net::FrameError;
using net::frame_error_name;
using net::is_dead_peer_errno;
using net::kMaxFrameBytes;
using net::read_frame;
using net::read_frame_deadline;
using net::write_frame;

/// --- versioned handshake ---

/// Magic token of the hello frame.  A peer that is not a malsched process
/// (wrong port, port scanner, load balancer health check) fails here.
inline constexpr const char* kWireMagic = "malsched-wire";

/// Protocol version, bumped on every incompatible wire change.  History:
///   1 — PR 5: instance/solve/result/ping/stats/drain over socketpairs.
///   2 — PR 6: hello handshake itself, idempotency token in solve (new
///       positional field) and result (token= field).
///   3 — this PR: stats frames carry the admission counters (admitted=,
///       rejected=) — decode requires them, so a v2 stats frame no longer
///       parses.
inline constexpr std::uint32_t kWireProtocolVersion = 3;

struct HelloMessage {
  std::uint32_t version = kWireProtocolVersion;
  /// "router" or "worker"; diagnostic only (either end accepts either role,
  /// so tooling like a health prober can speak the protocol too).
  std::string role;
};
[[nodiscard]] std::string encode_hello(const HelloMessage& message);
[[nodiscard]] std::optional<HelloMessage> decode_hello(
    const std::string& payload);

/// Validates a peer's greeting frame.  Returns std::nullopt when the peer
/// speaks this protocol version (filling *peer when non-null); otherwise a
/// human-readable reason — garbage greeting, wrong magic, or a version
/// mismatch — destined for a ProtocolMismatch error.
[[nodiscard]] std::optional<std::string> validate_hello(
    const std::string& payload, HelloMessage* peer = nullptr);

/// Performs the full handshake on a fresh connection: writes this side's
/// hello, then reads and validates the peer's under `timeout` (the read is
/// deadline-bounded so a silent or hostile peer cannot hang the caller).
/// Both sides write first, so neither blocks on the other.  False on
/// failure with *reason set (when non-null) to the mismatch/garbage/timeout
/// explanation.  Used by the router on every transport open and by
/// run_worker before its first real frame.
[[nodiscard]] bool handshake(int fd, const std::string& role,
                             std::chrono::milliseconds timeout,
                             std::string* reason = nullptr);

/// --- message encoding (pure string builders / parsers) ---

/// Which encoding a data-bearing message is emitted in.  Decoders need no
/// dialect argument — they sniff the first byte (binary tags are >= 0x80,
/// text messages start with ASCII).
enum class Dialect {
  Text,    ///< key=value hexfloat lines — TCP fleet, socketpair, humans
  Binary,  ///< tagged LE fixed-width + raw IEEE-754 bits — shm data plane
};

/// First payload byte of each binary message; >= 0x80 so no text message
/// (which starts with a lowercase ASCII keyword) can collide.
inline constexpr unsigned char kBinaryInstanceTag = 0x81;
inline constexpr unsigned char kBinarySolveTag = 0x82;
inline constexpr unsigned char kBinaryResultTag = 0x83;

/// `instance` message: name plus the bit-exact hexfloat serialization.
[[nodiscard]] std::string encode_instance(const std::string& name,
                                          const core::Instance& instance,
                                          Dialect dialect = Dialect::Text);
struct InstanceMessage {
  std::string name;
  std::optional<core::Instance> instance;
};
[[nodiscard]] std::optional<InstanceMessage> decode_instance(
    const std::string& payload);

struct SolveMessage {
  /// Wire-exchange id: unique per frame, echoed by the matching result.
  std::uint64_t id = 0;
  /// Idempotency token: stable across retries of the same request.  A
  /// worker that has already solved (or is solving) this token must not
  /// solve it again — it replays/aliases instead.
  std::uint64_t token = 0;
  double priority_weight = 1.0;
  /// Latency budget in seconds from worker-side admission; unset = none.
  std::optional<double> deadline_seconds;
  std::string solver;
  std::string instance_name;
};
[[nodiscard]] std::string encode_solve(const SolveMessage& message,
                                       Dialect dialect = Dialect::Text);
[[nodiscard]] std::optional<SolveMessage> decode_solve(
    const std::string& payload);

/// `result` message: the full SolveResult, bit-exact, echoing the solve's
/// exchange id and idempotency token.
[[nodiscard]] std::string encode_result(std::uint64_t id, std::uint64_t token,
                                        const service::SolveResult& result,
                                        Dialect dialect = Dialect::Text);
struct ResultMessage {
  std::uint64_t id = 0;
  std::uint64_t token = 0;
  service::SolveResult result;
};
[[nodiscard]] std::optional<ResultMessage> decode_result(
    const std::string& payload);

/// Aggregate-able cache statistics.
[[nodiscard]] std::string encode_stats(const service::CacheStats& stats);
[[nodiscard]] std::optional<service::CacheStats> decode_stats(
    const std::string& payload);

/// First whitespace-delimited token of a payload — the message type
/// ("hello", "instance", "solve", "result", "ping", "pong", "stats",
/// "drain", "drained").  Binary payloads map their tag byte to the same
/// names, so dispatch loops are dialect-blind.
[[nodiscard]] std::string message_type(const std::string& payload);

}  // namespace malsched::shard::wire
