#pragma once

/// \file standby.hpp
/// Router hot standby: the process that makes the control plane survive
/// the deaths the data plane already does.
///
/// Topology (the HA deployment of docs/OPERATIONS.md, "Router HA"):
///
///     workers (malsched_worker --listen, one per host)
///        ▲  ▲                           ▲
///        │  │  wire protocol            │ re-adopt on takeover
///     primary router ── journal ──▶ standby (this module)
///        (ShardRouter + --standby)      (--standby-listen)
///
/// The standby opens the replication connection with the versioned `hello`
/// handshake under the `standby` role, then folds the primary's journal
/// stream (journal.hpp) into a StandbyState: ring membership, the primed
/// set, the in-flight idempotency-token table, and every final-round
/// result, bit-exact.  Any record doubles as a heartbeat.
///
/// Death detection, two signals with different strengths:
///   * DeadPeer/EOF on the replication stream — definitive (the kernel
///     says the primary's socket is gone); take over immediately.
///   * Heartbeat deadline — presumptive (silence for heartbeat_timeout).
///     A *slow* primary is not a dead one: the primary pulses from its
///     run loop, which keeps cycling even while every worker is pinned by
///     a long solve, so slow solves never trip this.  Only a truly wedged
///     or partitioned primary goes silent.
///
/// Takeover re-adopts the worker fleet by dialing the same endpoints (a
/// worker whose router died returns to its accept loop), emits every
/// journaled result verbatim — completed work is never re-solved — and
/// replays the in-flight table under its existing idempotency tokens, so
/// the client stream is effectively-once end to end and byte-identical to
/// a single-process run.
///
/// Split-brain guard: workers serve one router session at a time, so a
/// standby that takes over against a primary that was merely presumed dead
/// cannot adopt a single worker — its takeover run adopts nobody and the
/// outcome reports SplitBrain instead of emitting a second client stream.
/// The worker-session exclusivity is the fence; see docs/OPERATIONS.md for
/// sizing heartbeat_timeout.

#include <chrono>
#include <cstdint>
#include <string>

#include "malsched/service/service.hpp"
#include "malsched/service/solver_registry.hpp"
#include "malsched/shard/journal.hpp"
#include "malsched/shard/router.hpp"

namespace malsched::shard {

/// `last_seen + timeout`, saturating at time_point::max() instead of
/// wrapping negative — the deadline arithmetic bug class the shm ring
/// already had to fix.  With last_seen == time_point::max() the deadline
/// is "never"; with time_point::min() it is min()+timeout (long expired),
/// both exactly what a caller handing in sentinel endpoints means.
[[nodiscard]] std::chrono::steady_clock::time_point heartbeat_deadline(
    std::chrono::steady_clock::time_point last_seen,
    std::chrono::milliseconds timeout);

struct StandbyOptions {
  /// Silence on the replication stream longer than this presumes the
  /// primary dead (see the split-brain guard above).  Must comfortably
  /// exceed the primary's heartbeat_interval plus its worst scheduling
  /// hiccup; the ratio, not the absolute, is what matters.
  std::chrono::milliseconds heartbeat_timeout{2000};
  /// How long to wait for the primary's `hello` on the replication stream.
  std::chrono::milliseconds handshake_timeout{10000};
  /// Fleet configuration for takeover: tcp_workers names the same worker
  /// endpoints the primary was given (fork workers die with their router
  /// and cannot be adopted — HA is a TCP-fleet feature).
  RouterOptions router;
};

struct StandbyOutcome {
  enum class Status {
    PrimaryCompleted,  ///< `jdone` received; no output owed, stand down
    TookOver,          ///< primary died; `report` is the full client output
    SplitBrain,        ///< takeover adopted no worker; primary may be alive
    ProtocolError,     ///< handshake failure or a garbage journal record
  };
  Status status = Status::ProtocolError;
  /// The mirrored state at the moment the stream ended (whatever the
  /// status), for tests and operator diagnostics.
  StandbyState state;
  /// Filled on TookOver: results in request order, exactly what
  /// write_results expects — journaled results verbatim plus replayed and
  /// fresh solves.
  service::ServiceReport report;
  /// Takeover accounting, the counters the CI smoke gates on:
  std::uint64_t results_from_journal = 0;  ///< emitted verbatim, zero re-solves
  std::uint64_t replayed_in_flight = 0;    ///< re-sent under existing tokens
  std::uint64_t solved_fresh = 0;          ///< never reached a worker before
  /// Transport counters of the takeover router (dead peers, retries,
  /// duplicates dropped); zeroed unless TookOver/SplitBrain.
  TransportStats transport;
  std::string error;  ///< ProtocolError/SplitBrain reason
};

/// Runs the standby side of the replication connection on `primary_fd`
/// (already connected; this call performs the handshake) until the primary
/// completes, dies, or goes silent past the heartbeat deadline — then, for
/// the latter two, takes over the fleet and finishes the batch.  Blocks
/// for the standby's whole life.  The batch must be the same file the
/// primary serves; the journal names requests by index into it.
[[nodiscard]] StandbyOutcome run_standby(int primary_fd,
                                         const service::SolverRegistry& registry,
                                         const service::BatchSpec& batch,
                                         const StandbyOptions& options = {});

}  // namespace malsched::shard
