#pragma once

/// \file hash_ring.hpp
/// Consistent-hash ring over the canonical key space, the placement function
/// of multi-process sharded serving.
///
/// Keys are the 64-bit canonical-form fingerprints exposed as
/// `InstanceHandle::key()` (canonical.hpp): two instances in the same
/// scale/permutation equivalence class hash to the same key, so every
/// request on equivalent work lands on the same worker — its result cache
/// shard serves the whole equivalence class, and cache hit rate scales with
/// the ring instead of being duplicated per process.
///
/// Each node (worker process) is planted at `vnodes` pseudo-random points on
/// the 2^64 circle (virtual nodes); a key is owned by the first node point
/// at or clockwise after it.  Virtual nodes trade lookup-table size for load
/// uniformity: with v points per node the heaviest node carries
/// ~1 + O(sqrt(log n / v)) of the mean load.  The defining property is
/// *minimal movement*: adding or removing one node relocates only the keys
/// in the arcs adjacent to that node's points — ~1/(n+1) of the key space —
/// while every other key keeps its owner, so a worker restart invalidates
/// one cache shard, not all of them.  tests/shard/test_hash_ring.cpp pins
/// both properties.
///
/// Not thread-safe: the router mutates the ring only from its own thread
/// (worker death / restart) and lookups happen on the same thread.

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace malsched::shard {

class HashRing {
 public:
  /// `vnodes` is the default virtual-node count of add_node; 64 keeps the
  /// max/mean load imbalance under ~30% for small rings (see the
  /// distribution test) at a few KB of table per node.
  explicit HashRing(std::size_t vnodes = 64);

  /// Plants `node` on the ring (`vnodes` = 0 uses the ring default).
  /// Re-adding an existing node is a no-op.
  void add_node(std::uint32_t node, std::size_t vnodes = 0);

  /// Removes every point of `node`; false when the node was not present.
  /// Only keys in the removed arcs change owner (minimal movement).
  bool remove_node(std::uint32_t node);

  [[nodiscard]] bool contains(std::uint32_t node) const;
  [[nodiscard]] std::size_t node_count() const { return vnode_counts_.size(); }
  [[nodiscard]] std::size_t point_count() const { return points_.size(); }
  /// Nodes currently on the ring, ascending.
  [[nodiscard]] std::vector<std::uint32_t> nodes() const;

  /// The node owning `key`: first point at or clockwise after the key,
  /// wrapping at 2^64.  The ring must be non-empty.
  [[nodiscard]] std::uint32_t owner(std::uint64_t key) const;

  /// The first min(replicas, node_count) *distinct* nodes clockwise from
  /// `key`, primary first — the natural replica set for instance fan-out
  /// (the router primes an instance on all of them so a dead primary fails
  /// over without re-priming).
  [[nodiscard]] std::vector<std::uint32_t> owners(std::uint64_t key,
                                                  std::size_t replicas) const;

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t node;

    bool operator<(const Point& other) const {
      return position != other.position ? position < other.position
                                        : node < other.node;
    }
  };

  std::vector<Point> points_;  ///< sorted by (position, node)
  std::map<std::uint32_t, std::size_t> vnode_counts_;
  std::size_t default_vnodes_;
};

}  // namespace malsched::shard
