#pragma once

/// \file data_plane.hpp
/// The data-plane seam of sharded serving: how instance/solve/result
/// payloads move between the router and a worker, separated from the
/// *control* plane (hello/ping/stats/drain), which always rides the
/// socketpair/TCP fd.
///
///   * SocketpairDataPlane — data frames share the control fd, exactly the
///     pre-seam behavior: length-prefixed text frames through the kernel.
///     The TCP fleet and the shm fallback path use it.
///   * ShmDataPlane — data frames ride a ShmChannel: a pair of SPSC rings
///     (requests router→worker, responses worker→router) in one anonymous
///     MAP_SHARED region created before fork, futex sleep/wake, binary
///     wire dialect.  The fd stays open beside it as the control plane,
///     the dead-peer detector (POLLHUP = worker gone), and the overflow
///     path for frames bigger than a ring.
///
/// Both impls speak through one status vocabulary (net::RingStatus) and
/// one deadline-based send/recv contract, so the router's streaming loop
/// and failover logic are plane-blind; `dialect()` tells callers which
/// wire encoding to hand to send().
///
/// A ShmChannel is created by the router before fork (the fork-without-
/// exec contract makes the mapping and every pointer into it valid in the
/// child verbatim); the child locates its channel by the worker index its
/// ForkTransport child-main receives.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "malsched/net/shm.hpp"
#include "malsched/shard/wire.hpp"

namespace malsched::shard {

/// Operator-facing counters of one worker's data plane, for `--stats`.
/// Direction is from this side's point of view (the router's, in practice).
struct DataPlaneStats {
  const char* plane = "";             ///< "shm" or "socketpair"
  std::uint64_t frames_out = 0;       ///< data frames sent to the peer
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;        ///< data frames received from it
  std::uint64_t bytes_in = 0;
  std::size_t request_depth = 0;      ///< bytes queued in the request ring
  std::size_t response_depth = 0;     ///< bytes queued in the response ring
  std::uint64_t producer_sleeps = 0;  ///< futex sleeps, both rings
  std::uint64_t consumer_sleeps = 0;
  std::uint64_t wakes = 0;            ///< FUTEX_WAKEs issued, both rings
};

/// One worker's data plane, seen from one side.  Same threading contract
/// as the rings underneath: one sending thread and one receiving thread at
/// a time (callers serialize their own side).
class DataPlane {
 public:
  virtual ~DataPlane() = default;

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;
  /// Which wire encoding to pass to send() — binary over shm, text over
  /// the fd.  Decoders sniff, so recv() payloads need no dispatch.
  [[nodiscard]] virtual wire::Dialect dialect() const = 0;

  /// Sends one data frame, blocking under backpressure until `deadline`.
  /// Ok / TooBig (nothing sent; the frame can never fit — shm only) /
  /// Timeout / Closed / DeadPeer.
  [[nodiscard]] virtual net::RingStatus send(
      const std::string& payload,
      std::chrono::steady_clock::time_point deadline) = 0;

  /// Receives one data frame, blocking until `deadline`.  A deadline in
  /// the past makes it a try_recv: Timeout means "nothing there right
  /// now", DeadPeer means the peer process is gone.
  [[nodiscard]] virtual net::RingStatus recv(
      std::string* payload,
      std::chrono::steady_clock::time_point deadline) = 0;

  /// True when recv() would return a frame without blocking — the router's
  /// multiplexed wait re-checks every plane through this before sleeping.
  [[nodiscard]] virtual bool recv_ready() = 0;

  [[nodiscard]] virtual DataPlaneStats stats() const = 0;

 protected:
  DataPlane() = default;
};

/// The two rings of one worker's shm data plane, in one region created
/// before fork.  Request ring: router → worker; response ring: worker →
/// router.  Both processes attach views to the same bytes — the parent
/// constructs this object pre-fork and the child inherits it (heap copy,
/// shared pages) at the same addresses.
class ShmChannel {
 public:
  /// One region holding both rings of `ring_bytes` capacity each (rounded
  /// to a power of two, floor 4 KiB).  nullptr when shared memory is
  /// unavailable (mmap failure or MALSCHED_SHM_DISABLE) — the caller falls
  /// back to the socketpair plane.
  [[nodiscard]] static std::unique_ptr<ShmChannel> create(
      std::size_t ring_bytes);

  /// Re-initializes both ring headers for a respawned worker.  Only while
  /// no process is using the rings (the previous worker is dead and
  /// reaped, the next not yet forked).
  void reset();

  [[nodiscard]] net::ShmRing& request_ring() { return request_; }
  [[nodiscard]] net::ShmRing& response_ring() { return response_; }

  /// Doorbell the response ring rings on every push, so the router can
  /// multiplex one futex wait over every worker's responses.  Set before
  /// fork; the pointer must live in its own pre-fork shared region.
  void set_doorbell(net::Doorbell* bell) {
    doorbell_ = bell;
    response_.set_doorbell(bell);
  }

 private:
  ShmChannel(std::unique_ptr<net::ShmRegion> region, std::size_t capacity);

  std::unique_ptr<net::ShmRegion> region_;
  std::size_t capacity_ = 0;
  net::ShmRing request_;
  net::ShmRing response_;
  net::Doorbell* doorbell_ = nullptr;
};

/// Data frames over the control fd — the pre-seam wire, unchanged: text
/// dialect, kernel socket buffers, POLLHUP as the death signal.
class SocketpairDataPlane final : public DataPlane {
 public:
  /// Does not own `fd`; the transport does.
  explicit SocketpairDataPlane(int fd) : fd_(fd) {}

  [[nodiscard]] const char* name() const override { return "socketpair"; }
  [[nodiscard]] wire::Dialect dialect() const override {
    return wire::Dialect::Text;
  }
  [[nodiscard]] net::RingStatus send(
      const std::string& payload,
      std::chrono::steady_clock::time_point deadline) override;
  [[nodiscard]] net::RingStatus recv(
      std::string* payload,
      std::chrono::steady_clock::time_point deadline) override;
  [[nodiscard]] bool recv_ready() override;
  [[nodiscard]] DataPlaneStats stats() const override;

 private:
  int fd_ = -1;
  std::uint64_t frames_out_ = 0, bytes_out_ = 0;
  std::uint64_t frames_in_ = 0, bytes_in_ = 0;
};

/// Data frames over a ShmChannel, binary dialect.  The fd is carried
/// alongside (not owned) for two jobs the rings cannot do: detecting a
/// dead peer (POLLHUP) and receiving oversize frames the peer diverted to
/// the control plane — recv() checks the ring first, then the fd, so the
/// overflow path needs no special dispatch in the caller.
class ShmDataPlane final : public DataPlane {
 public:
  /// Which end of the channel this side is: the router sends requests and
  /// receives responses; the worker the reverse.
  enum class Side { Router, Worker };

  /// `fd` < 0 disables the fd-side recv/liveness checks (the worker's
  /// control thread owns its fd reads instead).
  ShmDataPlane(ShmChannel& channel, Side side, int fd);

  [[nodiscard]] const char* name() const override { return "shm"; }
  [[nodiscard]] wire::Dialect dialect() const override {
    return wire::Dialect::Binary;
  }
  [[nodiscard]] net::RingStatus send(
      const std::string& payload,
      std::chrono::steady_clock::time_point deadline) override;
  [[nodiscard]] net::RingStatus recv(
      std::string* payload,
      std::chrono::steady_clock::time_point deadline) override;
  [[nodiscard]] bool recv_ready() override;
  [[nodiscard]] DataPlaneStats stats() const override;

 private:
  [[nodiscard]] bool peer_gone() const;

  ShmChannel& channel_;
  net::ShmRing& out_;
  net::ShmRing& in_;
  int fd_ = -1;
};

}  // namespace malsched::shard
