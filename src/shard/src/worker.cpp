#include "malsched/shard/worker.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "malsched/service/scheduler.hpp"
#include "malsched/shard/wire.hpp"

namespace malsched::shard {

namespace {

/// One submitted request awaiting resolution, in submission order.
struct Pending {
  std::uint64_t id = 0;
  std::uint64_t token = 0;
  service::Ticket ticket;
};

/// Completed idempotency tokens the worker can replay without re-solving.
/// Bounded FIFO: old memos age out, which is safe — the router only retries
/// while a request is unresolved, so a replayed token is always recent.
constexpr std::size_t kMaxCompletedTokens = 65536;

}  // namespace

int run_worker(int fd, const service::SolverRegistry& registry,
               const WorkerOptions& options) {
  // Versioned handshake before anything else: a mismatched or impostor
  // router is rejected here, and the scheduler is never even constructed.
  // Both sides write-then-read, so the exchange cannot deadlock.
  if (!wire::handshake(fd, "worker", std::chrono::milliseconds(10000))) {
    return 2;
  }

  // The single shared ServiceOptions -> Scheduler::Options mapping: sharded
  // workers must serve exactly like run_service would.
  auto scheduler_options = service::make_scheduler_options(options);
  if (scheduler_options.threads == 0) {
    scheduler_options.threads = 1;  // hardware concurrency is the router's
                                    // host, not a per-shard default
  }
  service::Scheduler scheduler(registry, scheduler_options);

  // Writer thread: resolves tickets in submission order and frames results
  // back.  A long solve at the queue head delays later *responses*, never
  // later *solves* — the Scheduler keeps streaming behind it — and the
  // router does not depend on response order (results carry ids).
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Pending> pending;
  bool closed = false;
  bool writing = false;  ///< writer is between pop and delivery
  std::uint64_t delivered = 0;

  // Idempotency state (guarded by queue_mutex).  A token is in exactly one
  // stage: `in_progress` (submitted, result not yet delivered; duplicate
  // solves park their wire id in `aliases` instead of re-solving) or
  // `completed` (memoized result, replayed verbatim — latency included, so
  // a replay is observably the original solve).  Token 0 opts out.
  std::map<std::uint64_t, service::SolveResult> completed;
  std::deque<std::uint64_t> completed_order;  ///< FIFO eviction of memos
  std::map<std::uint64_t, std::vector<std::uint64_t>> aliases;
  std::set<std::uint64_t> in_progress;

  // Both threads write frames (results from the writer, pong/stats/drained
  // from the reader); serialize so frames never interleave mid-payload.
  std::mutex write_mutex;
  bool peer_gone = false;
  const auto send_frame = [&](const std::string& payload) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (!peer_gone && !wire::write_frame(fd, payload)) {
      peer_gone = true;  // router died: keep draining, stop writing
    }
  };

  // Delivers a result, promotes its token in_progress -> completed, and
  // flushes any duplicate solves that parked on the token meanwhile (their
  // replay is byte-identical to the original, latency included).
  const auto finish = [&](std::uint64_t id, std::uint64_t token,
                          const service::SolveResult& result) {
    send_frame(wire::encode_result(id, token, result));
    if (token == 0) {
      return;
    }
    std::vector<std::uint64_t> replay_ids;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      in_progress.erase(token);
      if (const auto parked = aliases.find(token); parked != aliases.end()) {
        replay_ids = std::move(parked->second);
        aliases.erase(parked);
      }
      if (completed.emplace(token, result).second) {
        completed_order.push_back(token);
        if (completed_order.size() > kMaxCompletedTokens) {
          completed.erase(completed_order.front());
          completed_order.pop_front();
        }
      }
    }
    for (const std::uint64_t replay_id : replay_ids) {
      send_frame(wire::encode_result(replay_id, token, result));
    }
  };

  std::thread writer([&] {
    for (;;) {
      Pending next;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] { return closed || !pending.empty(); });
        if (pending.empty()) {
          return;
        }
        next = std::move(pending.front());
        pending.pop_front();
        writing = true;
      }
      finish(next.id, next.token, next.ticket.get());
      {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        writing = false;
        ++delivered;
      }
      queue_cv.notify_all();
    }
  });

  const auto shutdown = [&](int code) {
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      closed = true;
    }
    queue_cv.notify_all();
    writer.join();
    return code;
  };

  std::map<std::string, service::InstanceHandle> handles;
  std::string payload;
  int exit_code = 0;
  while (wire::read_frame(fd, &payload)) {
    const std::string type = wire::message_type(payload);
    if (type == "instance") {
      auto message = wire::decode_instance(payload);
      if (!message || !message->instance) {
        exit_code = 1;  // protocol error: the router serialized this itself
        break;
      }
      handles.insert_or_assign(message->name,
                               service::intern(std::move(*message->instance)));
    } else if (type == "solve") {
      const auto message = wire::decode_solve(payload);
      if (!message) {
        exit_code = 1;
        break;
      }
      // Idempotency gate: a token this worker has already completed is
      // replayed from the memo; one still in flight parks this wire id on
      // the original solve.  Either way the solver runs at most once per
      // token, which is what makes the router's retry-on-replica safe.
      if (message->token != 0) {
        std::optional<service::SolveResult> memo;
        bool parked = false;
        {
          const std::lock_guard<std::mutex> lock(queue_mutex);
          if (const auto done = completed.find(message->token);
              done != completed.end()) {
            memo = done->second;
          } else if (in_progress.count(message->token) != 0) {
            aliases[message->token].push_back(message->id);
            parked = true;
          } else {
            in_progress.insert(message->token);
          }
        }
        if (memo) {
          send_frame(
              wire::encode_result(message->id, message->token, *memo));
          continue;
        }
        if (parked) {
          continue;
        }
      }
      service::Ticket ticket;
      const auto it = handles.find(message->instance_name);
      if (it == handles.end()) {
        // The router primes before solving, so this is a routing bug; answer
        // it per-request (typed ParseError) instead of dying.
        ticket = service::Ticket();
      } else {
        service::SubmitOptions submit_options;
        submit_options.priority_weight = message->priority_weight;
        if (message->deadline_seconds) {
          submit_options.deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      std::min(*message->deadline_seconds,
                               service::kMaxDeadlineBudgetSeconds)));
        }
        ticket = scheduler.submit(message->solver, it->second, submit_options);
      }
      if (!ticket.valid()) {
        finish(message->id, message->token,
               service::SolveResult::failure(
                   message->solver, service::ErrorCode::ParseError,
                   "worker does not hold instance '" + message->instance_name +
                       "' (routing bug?)"));
        continue;
      }
      {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        pending.push_back(
            Pending{message->id, message->token, std::move(ticket)});
      }
      queue_cv.notify_all();
    } else if (type == "ping") {
      // Answered inline by the reader so liveness is observable even while
      // every scheduler thread is busy with a long solve.
      std::string reply = payload;
      reply.replace(0, 4, "pong");
      send_frame(reply);
    } else if (type == "stats") {
      send_frame(wire::encode_stats(scheduler.cache_stats()));
    } else if (type == "drain") {
      // Finish everything submitted so far, then acknowledge.  The router
      // sends nothing after drain; the next read sees EOF and exits.
      std::unique_lock<std::mutex> lock(queue_mutex);
      queue_cv.wait(lock, [&] { return pending.empty() && !writing; });
      const std::uint64_t count = delivered;
      lock.unlock();
      send_frame("drained " + std::to_string(count));
    } else {
      exit_code = 1;
      break;
    }
  }
  return shutdown(exit_code);
}

}  // namespace malsched::shard
