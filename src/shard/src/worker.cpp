#include "malsched/shard/worker.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "malsched/service/scheduler.hpp"
#include "malsched/shard/data_plane.hpp"
#include "malsched/shard/wire.hpp"
#include "malsched/support/faultpoint.hpp"

namespace malsched::shard {

namespace {

/// One submitted request awaiting resolution, in submission order.
struct Pending {
  std::uint64_t id = 0;
  std::uint64_t token = 0;
  service::Ticket ticket;
};

/// Completed idempotency tokens the worker can replay without re-solving.
/// Bounded FIFO: old memos age out, which is safe — the router only retries
/// while a request is unresolved, so a replayed token is always recent.
constexpr std::size_t kMaxCompletedTokens = 65536;

/// How long a result push may wait on a full response ring before the
/// worker concludes the router stopped consuming.  Far beyond any real
/// stall: the router drains responses continuously while anything is in
/// flight.
constexpr std::chrono::seconds kResultPushBudget{60};

/// Idle slice of the shm request-ring loop: long enough that an idle
/// worker sleeps (futex) instead of spinning, short enough that a drain
/// barrier requested over the control plane is honored promptly.
constexpr std::chrono::milliseconds kRingIdleSlice{250};

}  // namespace

int run_worker(int fd, const service::SolverRegistry& registry,
               const WorkerOptions& options, ShmChannel* channel) {
  // Versioned handshake before anything else: a mismatched or impostor
  // router is rejected here, and the scheduler is never even constructed.
  // Both sides write-then-read, so the exchange cannot deadlock.
  if (!wire::handshake(fd, "worker", std::chrono::milliseconds(10000))) {
    return 2;
  }

  // Which wire encoding results/requests travel in: binary through shared
  // memory, text through the fd.  Decoders sniff, so the dispatch below is
  // dialect-blind either way.
  const wire::Dialect dialect =
      channel != nullptr ? wire::Dialect::Binary : wire::Dialect::Text;

  // The single shared ServiceOptions -> Scheduler::Options mapping: sharded
  // workers must serve exactly like run_service would.
  auto scheduler_options = service::make_scheduler_options(options);
  if (scheduler_options.threads == 0) {
    scheduler_options.threads = 1;  // hardware concurrency is the router's
                                    // host, not a per-shard default
  }
  service::Scheduler scheduler(registry, scheduler_options);

  // Writer thread: resolves tickets in submission order and frames results
  // back.  A long solve at the queue head delays later *responses*, never
  // later *solves* — the Scheduler keeps streaming behind it — and the
  // router does not depend on response order (results carry ids).
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Pending> pending;
  bool closed = false;
  bool writing = false;  ///< writer is between pop and delivery
  std::uint64_t delivered = 0;

  // Idempotency state (guarded by queue_mutex).  A token is in exactly one
  // stage: `in_progress` (submitted, result not yet delivered; duplicate
  // solves park their wire id in `aliases` instead of re-solving) or
  // `completed` (memoized result, replayed verbatim — latency included, so
  // a replay is observably the original solve).  Token 0 opts out.
  std::map<std::uint64_t, service::SolveResult> completed;
  std::deque<std::uint64_t> completed_order;  ///< FIFO eviction of memos
  std::map<std::uint64_t, std::vector<std::uint64_t>> aliases;
  std::set<std::uint64_t> in_progress;

  // Multiple threads write frames to the fd (results from the writer,
  // pong/stats/drained from the reader/control thread); serialize so
  // frames never interleave mid-payload.
  std::mutex write_mutex;
  bool peer_gone = false;
  // Set once the control plane hits EOF/error — the router is gone.  The
  // response-ring push probes it so a worker never sleeps forever pushing
  // results nobody will read.
  std::atomic<bool> router_gone{false};
  const auto send_frame = [&](const std::string& payload) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (!peer_gone && !wire::write_frame(fd, payload)) {
      peer_gone = true;  // router died: keep draining, stop writing
    }
  };

  // Emits one encoded result.  Shm mode pushes it to the response ring
  // (writer thread and reader thread both land here — the mutex makes the
  // ring's single-producer contract hold); a frame the ring could never
  // hold is diverted to the control fd, where the router's plane picks it
  // up transparently.  Socketpair mode is just the fd.
  std::mutex emit_mutex;
  const auto emit_payload = [&](const std::string& payload) {
    if (channel != nullptr) {
      const std::lock_guard<std::mutex> lock(emit_mutex);
      const auto status = channel->response_ring().push(
          payload, std::chrono::steady_clock::now() + kResultPushBudget,
          [&] { return !router_gone.load(std::memory_order_relaxed); });
      if (status != net::RingStatus::TooBig) {
        return;  // Ok, or the router is gone — either way, done here
      }
    }
    send_frame(payload);
  };
  const auto emit_result = [&](std::uint64_t id, std::uint64_t token,
                               const service::SolveResult& result) {
    const std::string payload = wire::encode_result(id, token, result, dialect);
    // A kill here is the nastiest worker death: the solve completed but the
    // reply never left, so the router must retry the token on a replica.
    // Dup emits the same payload twice — the router's id dedup absorbs it.
    if (support::faultpoint("worker.before_reply") ==
        support::FaultAction::Dup) {
      emit_payload(payload);
    }
    emit_payload(payload);
  };

  // Delivers a result, promotes its token in_progress -> completed, and
  // flushes any duplicate solves that parked on the token meanwhile (their
  // replay is byte-identical to the original, latency included).
  const auto finish = [&](std::uint64_t id, std::uint64_t token,
                          const service::SolveResult& result) {
    emit_result(id, token, result);
    if (token == 0) {
      return;
    }
    std::vector<std::uint64_t> replay_ids;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      in_progress.erase(token);
      if (const auto parked = aliases.find(token); parked != aliases.end()) {
        replay_ids = std::move(parked->second);
        aliases.erase(parked);
      }
      if (completed.emplace(token, result).second) {
        completed_order.push_back(token);
        if (completed_order.size() > kMaxCompletedTokens) {
          completed.erase(completed_order.front());
          completed_order.pop_front();
        }
      }
    }
    for (const std::uint64_t replay_id : replay_ids) {
      emit_result(replay_id, token, result);
    }
  };

  std::thread writer([&] {
    for (;;) {
      Pending next;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] { return closed || !pending.empty(); });
        if (pending.empty()) {
          return;
        }
        next = std::move(pending.front());
        pending.pop_front();
        writing = true;
      }
      finish(next.id, next.token, next.ticket.get());
      {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        writing = false;
        ++delivered;
      }
      queue_cv.notify_all();
    }
  });

  const auto shutdown_worker = [&](int code) {
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      closed = true;
    }
    queue_cv.notify_all();
    writer.join();
    return code;
  };

  // Interned instances by router-assigned name.  In shm mode two threads
  // touch the map (the ring loop and the control thread's oversize-
  // instance path); the mutex is uncontended in socketpair mode.
  std::map<std::string, service::InstanceHandle> handles;
  std::mutex handles_mutex;

  // --- frame handlers shared by both data planes ---

  const auto handle_instance = [&](const std::string& payload) {
    auto message = wire::decode_instance(payload);
    if (!message || !message->instance) {
      return false;  // protocol error: the router serialized this itself
    }
    const std::lock_guard<std::mutex> lock(handles_mutex);
    handles.insert_or_assign(message->name,
                             service::intern(std::move(*message->instance)));
    return true;
  };

  const auto handle_solve = [&](const std::string& payload) {
    const auto message = wire::decode_solve(payload);
    if (!message) {
      return false;
    }
    // Idempotency gate: a token this worker has already completed is
    // replayed from the memo; one still in flight parks this wire id on
    // the original solve.  Either way the solver runs at most once per
    // token, which is what makes the router's retry-on-replica safe.
    if (message->token != 0) {
      std::optional<service::SolveResult> memo;
      bool parked = false;
      {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        if (const auto done = completed.find(message->token);
            done != completed.end()) {
          memo = done->second;
        } else if (in_progress.count(message->token) != 0) {
          aliases[message->token].push_back(message->id);
          parked = true;
        } else {
          in_progress.insert(message->token);
        }
      }
      if (memo) {
        emit_result(message->id, message->token, *memo);
        return true;
      }
      if (parked) {
        return true;
      }
    }
    // Copy the handle out under the lock, submit outside it: submit() may
    // block on admission backpressure and must never hold up the control
    // thread's oversize-instance path.
    std::optional<service::InstanceHandle> handle;
    {
      const std::lock_guard<std::mutex> lock(handles_mutex);
      const auto it = handles.find(message->instance_name);
      if (it != handles.end()) {
        handle = it->second;
      }
    }
    service::Ticket ticket;
    if (handle) {
      service::SubmitOptions submit_options;
      submit_options.priority_weight = message->priority_weight;
      if (message->deadline_seconds) {
        submit_options.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    std::min(*message->deadline_seconds,
                             service::kMaxDeadlineBudgetSeconds)));
      }
      ticket = scheduler.submit(message->solver, *handle, submit_options);
    }
    if (!ticket.valid()) {
      // The router primes before solving, so this is a routing bug; answer
      // it per-request (typed ParseError) instead of dying.
      finish(message->id, message->token,
             service::SolveResult::failure(
                 message->solver, service::ErrorCode::ParseError,
                 "worker does not hold instance '" + message->instance_name +
                     "' (routing bug?)"));
      return true;
    }
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      pending.push_back(
          Pending{message->id, message->token, std::move(ticket)});
    }
    queue_cv.notify_all();
    return true;
  };

  // Drain barrier: everything admitted so far finishes and is delivered.
  const auto drain_barrier = [&] {
    std::unique_lock<std::mutex> lock(queue_mutex);
    queue_cv.wait(lock, [&] { return pending.empty() && !writing; });
    const std::uint64_t count = delivered;
    lock.unlock();
    send_frame("drained " + std::to_string(count));
  };

  // --- socketpair mode: one reader loop, data and control on the fd ---

  if (channel == nullptr) {
    std::string payload;
    int exit_code = 0;
    while (wire::read_frame(fd, &payload)) {
      const std::string type = wire::message_type(payload);
      if (type == "instance") {
        if (!handle_instance(payload)) {
          exit_code = 1;
          break;
        }
      } else if (type == "solve") {
        if (!handle_solve(payload)) {
          exit_code = 1;
          break;
        }
      } else if (type == "ping") {
        // Answered inline by the reader so liveness is observable even
        // while every scheduler thread is busy with a long solve.
        std::string reply = payload;
        reply.replace(0, 4, "pong");
        send_frame(reply);
      } else if (type == "stats") {
        send_frame(wire::encode_stats(scheduler.cache_stats()));
      } else if (type == "drain") {
        // Finish everything submitted so far, then acknowledge.  The
        // router sends nothing after drain; the next read sees EOF and
        // exits.
        drain_barrier();
      } else {
        exit_code = 1;
        break;
      }
    }
    return shutdown_worker(exit_code);
  }

  // --- shm mode: requests ride the ring, control rides the fd ---
  //
  // The control thread owns the fd: ping/stats answered inline (liveness
  // stays observable during long solves, exactly as before), oversize
  // instances the router diverted here are interned, and EOF — the
  // router's drain-and-exit signal — closes the rings so the main loop
  // unblocks and winds down.  `drain` is only *flagged* here; the ring
  // loop completes it once the request ring is empty, because only the
  // ring consumer can know it holds no half-admitted request.
  std::atomic<bool> drain_requested{false};
  std::atomic<int> control_exit{0};
  std::thread control([&] {
    std::string payload;
    while (wire::read_frame(fd, &payload)) {
      const std::string type = wire::message_type(payload);
      if (type == "ping") {
        std::string reply = payload;
        reply.replace(0, 4, "pong");
        send_frame(reply);
      } else if (type == "stats") {
        send_frame(wire::encode_stats(scheduler.cache_stats()));
      } else if (type == "instance") {
        if (!handle_instance(payload)) {
          control_exit.store(1, std::memory_order_relaxed);
          break;
        }
      } else if (type == "drain") {
        drain_requested.store(true, std::memory_order_relaxed);
      } else {
        control_exit.store(1, std::memory_order_relaxed);
        break;
      }
    }
    router_gone.store(true, std::memory_order_relaxed);
    // Close both rings: wakes the ring loop (drains what was published,
    // then exits) and any result push still parked on a full ring.
    channel->request_ring().close();
    channel->response_ring().close();
  });

  std::string payload;
  int exit_code = 0;
  for (;;) {
    const auto status = channel->request_ring().pop(
        &payload, std::chrono::steady_clock::now() + kRingIdleSlice);
    if (status == net::RingStatus::Ok) {
      const std::string type = wire::message_type(payload);
      const bool ok = type == "instance" ? handle_instance(payload)
                      : type == "solve"  ? handle_solve(payload)
                                         : false;
      if (!ok) {
        exit_code = 1;
        break;
      }
      continue;
    }
    if (status == net::RingStatus::Closed) {
      break;  // EOF propagated through the ring: drain-and-exit
    }
    // Timeout: the ring is idle, so nothing is half-admitted — the only
    // state a drain barrier could miss — and the barrier may run now.
    if (drain_requested.exchange(false, std::memory_order_relaxed)) {
      drain_barrier();
    }
  }

  // Wind down: close the rings (idempotent; unblocks the peer if it is
  // parked on one) and kick the control thread off its blocking read.
  channel->request_ring().close();
  channel->response_ring().close();
  ::shutdown(fd, SHUT_RDWR);
  control.join();
  if (exit_code == 0) {
    exit_code = control_exit.load(std::memory_order_relaxed);
  }
  return shutdown_worker(exit_code);
}

}  // namespace malsched::shard
