#include "malsched/shard/standby.hpp"

#include <algorithm>
#include <utility>

#include "malsched/net/frame.hpp"
#include "malsched/support/faultpoint.hpp"
#include "malsched/shard/wire.hpp"

namespace malsched::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// Finishes the batch after the primary's death: journaled results are
/// emitted verbatim (never re-solved), in-flight requests replay under
/// their existing idempotency tokens, everything else solves fresh.
void take_over(const service::SolverRegistry& registry,
               const service::BatchSpec& batch, const StandbyOptions& options,
               StandbyOutcome* outcome) {
  support::faultpoint("standby.before_takeover");

  RouterRunOptions run_options;
  run_options.repeat = 1;  // earlier rounds only warmed caches that died
                           // with the primary; the client sees one round
  run_options.pre_resolved.resize(batch.requests.size());
  run_options.preset_tokens.assign(batch.requests.size(), 0);
  for (const auto& [index, result] : outcome->state.resolved) {
    if (index < batch.requests.size()) {
      run_options.pre_resolved[index] = result;
      ++outcome->results_from_journal;
    }
  }
  for (const auto& [token, index] : outcome->state.in_flight) {
    if (index >= batch.requests.size() || run_options.pre_resolved[index]) {
      continue;  // resolved wins: that token's request already completed
    }
    // Several tokens can point at one request across retries; the highest
    // (latest) one is the token a surviving worker may remember.
    run_options.preset_tokens[index] =
        std::max(run_options.preset_tokens[index], token);
  }
  for (const std::uint64_t token : run_options.preset_tokens) {
    outcome->replayed_in_flight += token != 0 ? 1 : 0;
  }
  outcome->solved_fresh = batch.requests.size() -
                          outcome->results_from_journal -
                          outcome->replayed_in_flight;
  // Fresh tokens must not collide with any the primary handed out.
  run_options.first_token = outcome->state.max_token + 1;

  // Re-adopt the fleet: the same endpoints, a fresh router.  Workers whose
  // router died are back in their accept loops; a worker still held by a
  // live primary rejects us by simply not answering the handshake.
  ShardRouter router(registry, options.router);
  if (router.alive_count() == 0) {
    outcome->status = StandbyOutcome::Status::SplitBrain;
    outcome->transport = router.transport_stats();
    outcome->error =
        "takeover adopted no worker: the fleet is gone, or the primary is "
        "alive and still holds every worker session (split-brain guard)";
    return;
  }
  outcome->report = router.run(batch, run_options);
  outcome->transport = router.transport_stats();
  outcome->status = StandbyOutcome::Status::TookOver;
}

}  // namespace

Clock::time_point heartbeat_deadline(Clock::time_point last_seen,
                                     std::chrono::milliseconds timeout) {
  const auto budget =
      std::chrono::duration_cast<Clock::duration>(timeout);
  if (last_seen > Clock::time_point::max() - budget) {
    return Clock::time_point::max();  // saturate, never wrap negative
  }
  return last_seen + budget;
}

StandbyOutcome run_standby(int primary_fd,
                           const service::SolverRegistry& registry,
                           const service::BatchSpec& batch,
                           const StandbyOptions& options) {
  StandbyOutcome outcome;
  if (options.router.tcp_workers.empty()) {
    outcome.error =
        "standby takeover requires tcp_workers: forked workers die with "
        "their router and cannot be re-adopted";
    return outcome;
  }
  std::string reason;
  if (!wire::handshake(primary_fd, "standby", options.handshake_timeout,
                       &reason)) {
    outcome.error = "replication handshake failed: " + reason;
    return outcome;
  }

  std::string payload;
  auto last_seen = Clock::now();
  for (;;) {
    net::FrameError frame_error = net::FrameError::None;
    const bool got = net::read_frame_deadline(
        primary_fd, &payload,
        heartbeat_deadline(last_seen, options.heartbeat_timeout),
        &frame_error);
    if (!got) {
      if (frame_error == net::FrameError::Oversize ||
          frame_error == net::FrameError::Truncated) {
        // A corrupt replication stream is not death evidence; refusing to
        // act on garbage beats taking over on it.
        outcome.error = std::string("replication stream failed: ") +
                        net::frame_error_name(frame_error);
        return outcome;
      }
      // Eof/DeadPeer: definitive.  Timeout: the heartbeat deadline — the
      // primary went silent for longer than any slow solve can explain
      // (its run loop pulses through those).  Either way, take over.
      take_over(registry, batch, options, &outcome);
      return outcome;
    }
    last_seen = Clock::now();
    std::string decode_error;
    const auto record = decode_journal(payload, &decode_error);
    if (!record) {
      // Fail-closed: a garbage record means the stream cannot be trusted
      // as a state mirror.  Reject typed; never crash, never take over on
      // state we cannot vouch for.
      outcome.error = "garbage journal record: " + decode_error;
      return outcome;
    }
    outcome.state.apply(*record);
    support::faultpoint("standby.after_journal");
    if (record->type == JournalRecord::Type::Done) {
      outcome.status = StandbyOutcome::Status::PrimaryCompleted;
      return outcome;
    }
  }
}

}  // namespace malsched::shard
