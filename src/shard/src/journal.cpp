#include "malsched/shard/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "malsched/shard/wire.hpp"

namespace malsched::shard {

namespace {

/// Strict u64 token parse: the whole token must be digits, no sign, no
/// trailing junk.  strtoull's silent negative-wraparound and partial
/// parses are exactly the lenience a fail-closed codec must not have.
bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() ||
      !std::all_of(text.begin(), text.end(),
                   [](unsigned char c) { return c >= '0' && c <= '9'; })) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::optional<JournalRecord> reject(std::string* error, const char* reason) {
  if (error != nullptr) {
    *error = reason;
  }
  return std::nullopt;
}

}  // namespace

JournalRecord JournalRecord::member(std::uint32_t worker, bool alive) {
  JournalRecord record;
  record.type = Type::Member;
  record.worker = worker;
  record.alive = alive;
  return record;
}

JournalRecord JournalRecord::prime(std::string name,
                                   std::vector<std::uint32_t> owners) {
  JournalRecord record;
  record.type = Type::Prime;
  record.name = std::move(name);
  record.owners = std::move(owners);
  return record;
}

JournalRecord JournalRecord::flight(std::uint64_t token,
                                    std::uint64_t request_index) {
  JournalRecord record;
  record.type = Type::Flight;
  record.token = token;
  record.request_index = request_index;
  return record;
}

JournalRecord JournalRecord::resolved(std::uint64_t request_index,
                                      std::uint64_t token,
                                      service::SolveResult result) {
  JournalRecord record;
  record.type = Type::Resolved;
  record.request_index = request_index;
  record.token = token;
  record.result = std::move(result);
  return record;
}

JournalRecord JournalRecord::heartbeat(std::uint64_t seq) {
  JournalRecord record;
  record.type = Type::Heartbeat;
  record.seq = seq;
  return record;
}

JournalRecord JournalRecord::done() {
  JournalRecord record;
  record.type = Type::Done;
  return record;
}

std::string encode_journal(const JournalRecord& record) {
  std::ostringstream out;
  switch (record.type) {
    case JournalRecord::Type::Member:
      out << "jmember " << record.worker << ' ' << (record.alive ? 1 : 0);
      break;
    case JournalRecord::Type::Prime:
      out << "jprime " << record.name;
      for (const std::uint32_t owner : record.owners) {
        out << ' ' << owner;
      }
      break;
    case JournalRecord::Type::Flight:
      out << "jflight " << record.token << ' ' << record.request_index;
      break;
    case JournalRecord::Type::Resolved:
      // The embedded payload is the wire's own `result` grammar, verbatim
      // (hexfloat doubles, escaped error text): replication preserves
      // results bit-exactly because the worker wire already had to.
      out << "jresolved " << record.request_index << '\n'
          << wire::encode_result(0, record.token, record.result);
      break;
    case JournalRecord::Type::Heartbeat:
      out << "jheartbeat " << record.seq;
      break;
    case JournalRecord::Type::Done:
      out << "jdone";
      break;
  }
  return out.str();
}

std::optional<JournalRecord> decode_journal(const std::string& payload,
                                            std::string* error) {
  // First line carries the tag and the fixed fields; jresolved appends the
  // embedded result payload after the newline.
  const auto newline = payload.find('\n');
  const std::string head =
      newline == std::string::npos ? payload : payload.substr(0, newline);
  std::istringstream in(head);
  std::string tag;
  in >> tag;

  const auto read_u64 = [&in](std::uint64_t* out) {
    std::string text;
    in >> text;
    return parse_u64(text, out);
  };
  const auto at_end = [&in] {
    std::string rest;
    in >> rest;
    return rest.empty();
  };

  if (tag == "jmember") {
    std::uint64_t worker = 0;
    std::uint64_t alive = 0;
    if (!read_u64(&worker) || worker > 0xffffffffULL || !read_u64(&alive) ||
        alive > 1 || !at_end() || newline != std::string::npos) {
      return reject(error, "malformed jmember record");
    }
    return JournalRecord::member(static_cast<std::uint32_t>(worker),
                                 alive == 1);
  }
  if (tag == "jprime") {
    std::string name;
    in >> name;
    if (name.empty()) {
      return reject(error, "jprime without an instance name");
    }
    std::vector<std::uint32_t> owners;
    std::string text;
    while (in >> text) {
      std::uint64_t owner = 0;
      if (!parse_u64(text, &owner) || owner > 0xffffffffULL) {
        return reject(error, "jprime with a non-numeric owner");
      }
      owners.push_back(static_cast<std::uint32_t>(owner));
    }
    if (owners.empty() || newline != std::string::npos) {
      return reject(error, "jprime without owners");
    }
    return JournalRecord::prime(std::move(name), std::move(owners));
  }
  if (tag == "jflight") {
    std::uint64_t token = 0;
    std::uint64_t request_index = 0;
    if (!read_u64(&token) || token == 0 || !read_u64(&request_index) ||
        !at_end() || newline != std::string::npos) {
      return reject(error, "malformed jflight record");
    }
    return JournalRecord::flight(token, request_index);
  }
  if (tag == "jresolved") {
    std::uint64_t request_index = 0;
    if (!read_u64(&request_index) || !at_end()) {
      return reject(error, "malformed jresolved header");
    }
    if (newline == std::string::npos || newline + 1 >= payload.size()) {
      return reject(error, "jresolved without an embedded result");
    }
    const auto embedded = wire::decode_result(payload.substr(newline + 1));
    if (!embedded) {
      return reject(error, "jresolved embeds an unparseable result");
    }
    return JournalRecord::resolved(request_index, embedded->token,
                                   embedded->result);
  }
  if (tag == "jheartbeat") {
    std::uint64_t seq = 0;
    if (!read_u64(&seq) || !at_end() || newline != std::string::npos) {
      return reject(error, "malformed jheartbeat record");
    }
    return JournalRecord::heartbeat(seq);
  }
  if (tag == "jdone") {
    if (!at_end() || newline != std::string::npos) {
      return reject(error, "jdone with trailing fields");
    }
    return JournalRecord::done();
  }
  return reject(error, "unknown journal record tag");
}

void StandbyState::apply(const JournalRecord& record) {
  ++records;
  switch (record.type) {
    case JournalRecord::Type::Member:
      if (record.worker >= members.size()) {
        members.resize(record.worker + 1, 0);
      }
      members[record.worker] = record.alive ? 1 : 0;
      break;
    case JournalRecord::Type::Prime:
      primed[record.name] = record.owners;
      break;
    case JournalRecord::Type::Flight:
      in_flight[record.token] = record.request_index;
      max_token = std::max(max_token, record.token);
      break;
    case JournalRecord::Type::Resolved:
      resolved[record.request_index] = record.result;
      // The token completed; a takeover must emit the journaled result,
      // not replay the solve.
      in_flight.erase(record.token);
      max_token = std::max(max_token, record.token);
      break;
    case JournalRecord::Type::Heartbeat:
      ++heartbeats;
      break;
    case JournalRecord::Type::Done:
      done = true;
      break;
  }
}

}  // namespace malsched::shard
