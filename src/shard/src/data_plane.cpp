#include "malsched/shard/data_plane.hpp"

#include <poll.h>

#include <algorithm>
#include <utility>

namespace malsched::shard {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMinRingBytes = 4096;

std::size_t round_down_pow2(std::size_t bytes) {
  std::size_t capacity = kMinRingBytes;
  while (capacity * 2 <= bytes && capacity * 2 != 0) {
    capacity *= 2;
  }
  return capacity;
}

/// revents of a 0-timeout poll; 0 when poll itself fails (treated as "no
/// event" — a bad fd shows up as POLLNVAL, not an errno branch).
short poll_events(int fd, short events) {
  struct pollfd pfd {
    fd, events, 0
  };
  if (::poll(&pfd, 1, 0) <= 0) {
    return 0;
  }
  return pfd.revents;
}

}  // namespace

// --- SocketpairDataPlane ----------------------------------------------------

net::RingStatus SocketpairDataPlane::send(const std::string& payload,
                                          Clock::time_point /*deadline*/) {
  // The kernel socket buffer is the backpressure here, and the router's
  // window <= worker-queue-capacity invariant keeps it from filling — the
  // pre-seam contract, unchanged.
  if (!net::write_frame(fd_, payload)) {
    return net::RingStatus::DeadPeer;
  }
  ++frames_out_;
  bytes_out_ += payload.size();
  return net::RingStatus::Ok;
}

net::RingStatus SocketpairDataPlane::recv(std::string* payload,
                                          Clock::time_point deadline) {
  // Compare before subtracting: a try-recv passes time_point::min(), and
  // min() - now() underflows to a huge *positive* wait if subtracted first.
  const auto now = Clock::now();
  const auto left =
      deadline <= now
          ? std::chrono::milliseconds(0)
          : std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now);
  struct pollfd pfd {
    fd_, POLLIN, 0
  };
  const int ready = ::poll(
      &pfd, 1,
      static_cast<int>(std::min<long long>(left.count(), 60 * 60 * 1000)));
  if (ready <= 0) {
    return net::RingStatus::Timeout;
  }
  if ((pfd.revents & POLLIN) == 0) {
    // POLLHUP/POLLERR with no readable data: the peer is gone and nothing
    // is left to drain.
    return net::RingStatus::DeadPeer;
  }
  // A try-recv (deadline already past) still commits to the frame the poll
  // just proved readable — it gets the anti-dribble floor instead of the
  // spent budget, or it could classify ready data as Timeout forever.
  const auto frame_deadline =
      left.count() > 0 ? deadline : Clock::now() + std::chrono::seconds(10);
  net::FrameError frame_error = net::FrameError::None;
  if (!net::read_frame_deadline(fd_, payload, frame_deadline, &frame_error)) {
    switch (frame_error) {
      case net::FrameError::Eof:
        return net::RingStatus::Closed;
      case net::FrameError::Timeout:
        return net::RingStatus::Timeout;
      default:
        return net::RingStatus::DeadPeer;
    }
  }
  ++frames_in_;
  bytes_in_ += payload->size();
  return net::RingStatus::Ok;
}

bool SocketpairDataPlane::recv_ready() {
  return (poll_events(fd_, POLLIN) & POLLIN) != 0;
}

DataPlaneStats SocketpairDataPlane::stats() const {
  DataPlaneStats stats;
  stats.plane = name();
  stats.frames_out = frames_out_;
  stats.bytes_out = bytes_out_;
  stats.frames_in = frames_in_;
  stats.bytes_in = bytes_in_;
  return stats;
}

// --- ShmChannel -------------------------------------------------------------

ShmChannel::ShmChannel(std::unique_ptr<net::ShmRegion> region,
                       std::size_t capacity)
    : region_(std::move(region)),
      capacity_(capacity),
      request_(region_->data(), capacity, /*initialize=*/true),
      response_(static_cast<unsigned char*>(region_->data()) +
                    net::ShmRing::footprint(capacity),
                capacity, /*initialize=*/true) {}

std::unique_ptr<ShmChannel> ShmChannel::create(std::size_t ring_bytes) {
  const std::size_t capacity = round_down_pow2(std::max(ring_bytes, kMinRingBytes));
  auto region = net::ShmRegion::create(2 * net::ShmRing::footprint(capacity));
  if (region == nullptr) {
    return nullptr;
  }
  return std::unique_ptr<ShmChannel>(
      new ShmChannel(std::move(region), capacity));
}

void ShmChannel::reset() {
  // Re-attach fresh views over re-initialized headers; the response ring
  // keeps its doorbell across respawns.
  request_ = net::ShmRing(region_->data(), capacity_, /*initialize=*/true);
  response_ = net::ShmRing(static_cast<unsigned char*>(region_->data()) +
                               net::ShmRing::footprint(capacity_),
                           capacity_, /*initialize=*/true);
  response_.set_doorbell(doorbell_);
}

// --- ShmDataPlane -----------------------------------------------------------

ShmDataPlane::ShmDataPlane(ShmChannel& channel, Side side, int fd)
    : channel_(channel),
      out_(side == Side::Router ? channel.request_ring()
                                : channel.response_ring()),
      in_(side == Side::Router ? channel.response_ring()
                               : channel.request_ring()),
      fd_(fd) {}

bool ShmDataPlane::peer_gone() const {
  if (fd_ < 0) {
    return false;  // no fd to probe: liveness is someone else's job
  }
  return (poll_events(fd_, 0) & (POLLHUP | POLLERR | POLLNVAL)) != 0;
}

net::RingStatus ShmDataPlane::send(const std::string& payload,
                                   Clock::time_point deadline) {
  return out_.push(payload, deadline, [this] { return !peer_gone(); });
}

net::RingStatus ShmDataPlane::recv(std::string* payload,
                                   Clock::time_point deadline) {
  const auto status =
      in_.pop(payload, deadline, [this] { return !peer_gone(); });
  if (status != net::RingStatus::Timeout || fd_ < 0) {
    return status;
  }
  // Ring empty: the peer may have diverted an oversize frame to the
  // control fd, and a silently dead peer shows up here too (a try_recv
  // never sleeps, so the pop above never ran the liveness probe).
  const short revents = poll_events(fd_, POLLIN);
  if ((revents & POLLIN) != 0) {
    net::FrameError frame_error = net::FrameError::None;
    if (!net::read_frame_deadline(fd_, payload,
                                  Clock::now() + std::chrono::seconds(10),
                                  &frame_error)) {
      return frame_error == net::FrameError::Eof ? net::RingStatus::Closed
                                                 : net::RingStatus::DeadPeer;
    }
    return net::RingStatus::Ok;
  }
  if ((revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
    return net::RingStatus::DeadPeer;
  }
  return status;
}

bool ShmDataPlane::recv_ready() {
  if (in_.depth_bytes() > 0 || in_.closed()) {
    return true;
  }
  return fd_ >= 0 && (poll_events(fd_, POLLIN) & POLLIN) != 0;
}

DataPlaneStats ShmDataPlane::stats() const {
  DataPlaneStats stats;
  stats.plane = name();
  const net::RingCounters& out = out_.counters();
  const net::RingCounters& in = in_.counters();
  stats.frames_out = out.frames.load(std::memory_order_relaxed);
  stats.bytes_out = out.bytes.load(std::memory_order_relaxed);
  stats.frames_in = in.frames.load(std::memory_order_relaxed);
  stats.bytes_in = in.bytes.load(std::memory_order_relaxed);
  stats.request_depth = out_.depth_bytes();
  stats.response_depth = in_.depth_bytes();
  stats.producer_sleeps =
      out.producer_sleeps.load(std::memory_order_relaxed) +
      in.producer_sleeps.load(std::memory_order_relaxed);
  stats.consumer_sleeps =
      out.consumer_sleeps.load(std::memory_order_relaxed) +
      in.consumer_sleeps.load(std::memory_order_relaxed);
  stats.wakes = out.wakes.load(std::memory_order_relaxed) +
                in.wakes.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace malsched::shard
