#include "malsched/shard/router.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <utility>

#include "malsched/net/socket.hpp"
#include "malsched/service/canonical.hpp"
#include "malsched/shard/wire.hpp"
#include "malsched/support/faultpoint.hpp"

namespace malsched::shard {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// How long a data-plane send may wait on backpressure before the worker
/// is declared wedged.  The window <= worker-queue-capacity invariant
/// means a healthy worker always drains, so hitting this is a fault.
constexpr std::chrono::seconds kSendBudget{60};

/// Slice of the router's multiplexed doorbell wait; also the cadence of
/// its dead-peer checks while only shm results are pending.
constexpr std::chrono::milliseconds kDoorbellSlice{50};

}  // namespace

ShardRouter::ShardRouter(const service::SolverRegistry& registry,
                         RouterOptions options)
    : registry_(registry),
      options_(std::move(options)),
      ring_(options_.vnodes == 0 ? 64 : options_.vnodes) {
  if (!options_.tcp_workers.empty()) {
    options_.shards = options_.tcp_workers.size();
  }
  if (options_.shards == 0) {
    options_.shards = 1;
  }
  if (options_.replication == 0) {
    options_.replication = 1;
  }
  if (options_.worker.queue_capacity == 0) {
    options_.worker.queue_capacity = 1;
  }
  // The deadlock-freedom invariant: never more in flight than the worker's
  // admission queue holds, so its reader thread never blocks in submit()
  // while the router blocks in send().
  options_.window = std::clamp<std::size_t>(options_.window, 1,
                                            options_.worker.queue_capacity);
  if (!options_.tcp_workers.empty()) {
    transport_ = std::make_unique<net::TcpTransport>(options_.tcp_workers,
                                                     options_.connect_timeout);
  } else {
    // Shared-memory data plane, set up BEFORE the transport ever forks so
    // every child inherits the mappings (fork-without-exec: the channel
    // objects and every pointer into the shared pages are valid in the
    // child verbatim).  Any slot whose channel cannot be created — mmap
    // failure, or MALSCHED_SHM_DISABLE in the environment — falls back to
    // the socketpair data plane, counted, never fatal.
    channels_.resize(options_.shards);
    if (options_.data_plane != DataPlaneMode::Socketpair) {
      doorbell_region_ = net::ShmRegion::create(sizeof(net::Doorbell));
      if (doorbell_region_ != nullptr) {
        doorbell_ = new (doorbell_region_->data()) net::Doorbell();
      }
      for (std::size_t i = 0; i < channels_.size(); ++i) {
        if (doorbell_ != nullptr) {
          channels_[i] = ShmChannel::create(options_.shm_ring_bytes);
        }
        if (channels_[i] == nullptr) {
          ++transport_stats_.shm_fallbacks;
        } else {
          channels_[i]->set_doorbell(doorbell_);
        }
      }
    }
    // _exit inside the transport, not exit: the forked child shares this
    // process's stdio buffers and must not flush them a second time.
    transport_ = std::make_unique<net::ForkTransport>(
        options_.shards, [this](std::size_t index, int child_fd) {
          if (standby_fd_ >= 0) {
            // The child inherits the replication socket across fork; were it
            // left open, the standby would never see DeadPeer after the
            // primary's death — a live worker would hold the stream up.
            ::close(standby_fd_);
          }
          return run_worker(child_fd, registry_, options_.worker,
                            index < channels_.size() ? channels_[index].get()
                                                     : nullptr);
        });
  }
  // Replication attaches before any worker exists so the standby's mirror
  // starts empty and sees every membership change, spawn included.
  attach_standby();
  workers_.resize(options_.shards);
  handshake_errors_.resize(options_.shards);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    (void)spawn(i);
  }
}

ShardRouter::~ShardRouter() {
  // EOF is the drain signal: each worker finishes its admitted jobs, joins
  // its writer and exits.  Close every fd first so the drains overlap, then
  // let the transport reap its processes (no-op for TCP and dead workers).
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) {
      ::close(worker.fd);
      worker.fd = -1;
    }
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    transport_->disconnect(i, -1);
  }
  if (standby_fd_ >= 0) {
    ::close(standby_fd_);
    standby_fd_ = -1;
  }
}

void ShardRouter::attach_standby() {
  int fd = options_.standby_fd;
  if (fd < 0) {
    if (!options_.standby) {
      return;
    }
    std::string error;
    fd = net::tcp_connect(*options_.standby, options_.connect_timeout, &error);
    if (fd < 0) {
      standby_error_ =
          "cannot reach standby " + options_.standby->to_string() + ": " +
          error;
      return;
    }
  }
  // Same versioned hello as every other connection; the standby announces
  // the `standby` role on its side.  A failed handshake only costs the
  // replication — the serving path never depends on the standby.
  std::string reason;
  if (!wire::handshake(fd, "router", options_.handshake_timeout, &reason)) {
    standby_error_ = "standby handshake failed: " + reason;
    ::close(fd);
    return;
  }
  standby_fd_ = fd;
  last_heartbeat_ = Clock::now();
}

void ShardRouter::journal(const JournalRecord& record) {
  if (standby_fd_ < 0) {
    return;
  }
  if (!wire::write_frame(standby_fd_, encode_journal(record))) {
    // A dead standby must not take the primary down with it: detach and
    // keep serving.  The operator sees it in standby_error/--stats.
    standby_error_ = "standby connection lost mid-run";
    ::close(standby_fd_);
    standby_fd_ = -1;
    return;
  }
  ++transport_stats_.journal_records;
}

void ShardRouter::maybe_heartbeat() {
  if (standby_fd_ < 0) {
    return;
  }
  const auto now = Clock::now();
  if (now - last_heartbeat_ < options_.heartbeat_interval) {
    return;
  }
  last_heartbeat_ = now;
  journal(JournalRecord::heartbeat(++heartbeat_seq_));
  ++transport_stats_.heartbeats_sent;
}

bool ShardRouter::spawn(std::size_t index) {
  // A respawned worker must not inherit the dead one's mid-stream ring
  // state; reset before open() forks, while no process is attached.
  if (index < channels_.size() && channels_[index] != nullptr) {
    channels_[index]->reset();
  }
  std::string error;
  const int fd = transport_->open(index, &error);
  if (fd < 0) {
    handshake_errors_[index] =
        "cannot reach " + transport_->describe(index) + ": " + error;
    return false;
  }
  // Versioned handshake before the worker joins the ring: a peer speaking
  // another protocol version (or no protocol at all — on TCP anything can
  // be listening there) is rejected typed, never sent frames.
  std::string reason;
  if (!wire::handshake(fd, "router", options_.handshake_timeout, &reason)) {
    ++transport_stats_.handshake_failures;
    handshake_errors_[index] = transport_->describe(index) + ": " + reason;
    transport_->terminate(index, fd);
    return false;
  }
  ++transport_stats_.handshakes;
  handshake_errors_[index].clear();
  Worker worker;
  worker.fd = fd;
  worker.alive = true;
  if (index < channels_.size() && channels_[index] != nullptr) {
    worker.plane = std::make_unique<ShmDataPlane>(
        *channels_[index], ShmDataPlane::Side::Router, fd);
  } else {
    worker.plane = std::make_unique<SocketpairDataPlane>(fd);
  }
  workers_[index] = std::move(worker);
  ring_.add_node(static_cast<std::uint32_t>(index));
  journal(JournalRecord::member(static_cast<std::uint32_t>(index), true));
  return true;
}

void ShardRouter::mark_dead(std::size_t index) {
  Worker& worker = workers_[index];
  if (!worker.alive) {
    return;
  }
  worker.alive = false;
  ++transport_stats_.dead_peers;
  // The socket said the worker is gone or unresponsive; the transport makes
  // that true (fork: SIGKILL + reap; TCP: close our end).
  transport_->terminate(index, worker.fd);
  worker.fd = -1;
  worker.plane.reset();
  ring_.remove_node(static_cast<std::uint32_t>(index));
  journal(JournalRecord::member(static_cast<std::uint32_t>(index), false));
}

std::size_t ShardRouter::alive_count() const {
  std::size_t count = 0;
  for (const Worker& worker : workers_) {
    count += worker.alive ? 1 : 0;
  }
  return count;
}

bool ShardRouter::alive(std::size_t worker) const {
  return worker < workers_.size() && workers_[worker].alive;
}

bool ShardRouter::read_frame_from(std::size_t index, std::string* payload,
                                  std::chrono::milliseconds timeout) {
  const Worker& worker = workers_[index];
  if (!worker.alive) {
    return false;
  }
  // One absolute deadline spans the wait-for-data poll AND the frame bytes
  // themselves: a peer that dribbles one byte per poll interval must run
  // out of the *total* budget, not re-arm it per chunk.
  const auto deadline = Clock::now() + timeout;
  struct pollfd pfd {
    worker.fd, POLLIN, 0
  };
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
    return false;
  }
  return wire::read_frame_deadline(worker.fd, payload, deadline);
}

bool ShardRouter::ping(std::size_t worker, std::chrono::milliseconds timeout) {
  if (!alive(worker)) {
    return false;
  }
  const std::string token = std::to_string(++next_wire_id_);
  if (!wire::write_frame(workers_[worker].fd, "ping " + token)) {
    mark_dead(worker);
    return false;
  }
  const auto deadline = Clock::now() + timeout;
  std::string payload;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0 || !read_frame_from(worker, &payload, left)) {
      mark_dead(worker);  // unresponsive counts as dead: rebalance the ring
      return false;
    }
    if (payload == "pong " + token) {
      return true;
    }
    // Any other frame is stale traffic from a previous exchange; skip it.
  }
}

bool ShardRouter::drain(std::size_t worker,
                        std::chrono::milliseconds timeout) {
  if (!alive(worker)) {
    return false;
  }
  if (!wire::write_frame(workers_[worker].fd, "drain")) {
    mark_dead(worker);
    return false;
  }
  const auto deadline = Clock::now() + timeout;
  std::string payload;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0 || !read_frame_from(worker, &payload, left)) {
      mark_dead(worker);
      return false;
    }
    if (wire::message_type(payload) == "drained") {
      return true;
    }
  }
}

void ShardRouter::kill(std::size_t worker) {
  if (worker < workers_.size()) {
    mark_dead(worker);  // SIGKILL + reap + ring removal
  }
}

bool ShardRouter::restart(std::size_t worker) {
  if (worker >= workers_.size()) {
    return false;
  }
  if (workers_[worker].alive) {
    (void)drain(worker);  // best effort; a wedged worker gets the SIGKILL
    mark_dead(worker);
  }
  return spawn(worker);
}

service::ServiceReport ShardRouter::run(const service::BatchSpec& batch,
                                        const RouterRunOptions& run_options) {
  service::ServiceReport report;
  report.results.resize(batch.requests.size());
  const auto run_start = Clock::now();
  if (run_options.first_token > 0 && next_token_ < run_options.first_token - 1) {
    // Takeover: mint fresh tokens strictly above every journaled one, so a
    // fresh token can never alias an in-flight token a surviving worker
    // still remembers.
    next_token_ = run_options.first_token - 1;
  }
  maybe_heartbeat();

  // --- Place and prime: each named instance goes to all its ring owners,
  // keyed by the canonical-form fingerprint (the same key every equivalent
  // instance hashes to, so equivalence classes share one worker's cache).
  struct Placed {
    std::vector<std::uint32_t> owners;  ///< primed replica set, primary first
  };
  std::map<std::string, Placed> placed;
  std::vector<char> primed_over_fd(workers_.size(), 0);
  for (const auto& [name, instance] : batch.instances) {
    if (ring_.node_count() == 0) {
      break;  // whole fleet is down; requests fail below
    }
    support::faultpoint("router.before_place");
    maybe_heartbeat();
    service::CanonicalOptions canonical_options;
    canonical_options.permute = true;
    const std::uint64_t key =
        service::canonicalize(instance, canonical_options).key;
    Placed place;
    place.owners = ring_.owners(key, options_.replication);
    // One encode per dialect in use, shared across owners.
    std::string text_frame;
    std::string binary_frame;
    for (const std::uint32_t owner : place.owners) {
      Worker& worker = workers_[owner];
      if (!worker.alive) {
        continue;
      }
      const bool binary = worker.plane->dialect() == wire::Dialect::Binary;
      std::string& frame = binary ? binary_frame : text_frame;
      if (frame.empty()) {
        frame = wire::encode_instance(name, instance, worker.plane->dialect());
      }
      auto status = worker.plane->send(frame, Clock::now() + kSendBudget);
      if (status == net::RingStatus::TooBig) {
        // An instance bigger than the shm ring is diverted over the
        // control fd (text dialect); the worker's control thread interns
        // it.  The ping barrier below orders it before any solve.
        if (text_frame.empty()) {
          text_frame = wire::encode_instance(name, instance);
        }
        if (wire::write_frame(worker.fd, text_frame)) {
          primed_over_fd[owner] = 1;
          status = net::RingStatus::Ok;
        }
      }
      if (status != net::RingStatus::Ok) {
        mark_dead(owner);
      }
    }
    journal(JournalRecord::prime(name, place.owners));
    placed.emplace(name, std::move(place));
  }
  // Barrier for fd-diverted instances: solves ride the ring and would
  // otherwise race ahead of an instance still in the control plane.  The
  // worker's control thread answers ping in order, so a pong proves every
  // earlier instance frame was interned.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (primed_over_fd[w] != 0 && workers_[w].alive) {
      (void)ping(w);
    }
  }

  // A request can end up ownerless for two distinct reasons, and the error
  // type must say which: every peer died (SolverFailure) vs. a peer was
  // *rejected* at the versioned handshake (ProtocolMismatch — the operator
  // deployed mismatched builds, and no amount of retrying will fix it).
  const auto no_owner_failure = [&](const std::string& solver,
                                    const std::string& text) {
    for (const std::string& reason : handshake_errors_) {
      if (!reason.empty()) {
        return service::SolveResult::failure(
            solver, service::ErrorCode::ProtocolMismatch,
            text + " (" + reason + ")");
      }
    }
    return service::SolveResult::failure(
        solver, service::ErrorCode::SolverFailure, text);
  };

  // --- Resolve requests, mirroring run_service: unknown instances become
  // deterministic per-request ParseErrors (byte-identical to single-process
  // output); instances no alive worker owns fail as SolverFailure (or
  // ProtocolMismatch, see above).
  struct Routed {
    std::size_t index;  ///< into batch.requests
    const service::BatchSpec::Request* request;
    const Placed* place;
  };
  std::vector<Routed> routed;
  routed.reserve(batch.requests.size());
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const auto& request = batch.requests[i];
    if (i < run_options.pre_resolved.size() && run_options.pre_resolved[i]) {
      // Takeover: the journal already holds this request's final result;
      // emit it verbatim, never re-solve.
      report.results[i] = *run_options.pre_resolved[i];
      continue;
    }
    const auto it = placed.find(request.instance_name);
    if (it == placed.end()) {
      if (batch.instances.count(request.instance_name) != 0) {
        report.results[i] = no_owner_failure(
            request.solver, "no alive shard worker to own instance '" +
                                request.instance_name + "'");
      } else {
        report.results[i] = service::SolveResult::failure(
            request.solver, service::ErrorCode::ParseError,
            "unknown instance '" + request.instance_name + "' (line " +
                std::to_string(request.line) + ")");
      }
      continue;
    }
    routed.push_back(Routed{i, &request, &it->second});
  }

  // --- Stream the rounds.  Latency decimation mirrors run_service.
  constexpr std::size_t kMaxLatencySamples = std::size_t{1} << 20;
  const std::size_t rounds = run_options.repeat == 0 ? 1 : run_options.repeat;
  const std::size_t total = rounds * routed.size();
  const std::size_t stride =
      total == 0 ? 1 : (total + kMaxLatencySamples - 1) / kMaxLatencySamples;
  std::size_t seen = 0;

  struct InFlight {
    std::size_t routed_index;
    Clock::time_point sent;
  };

  for (std::size_t round = 0; round < rounds; ++round) {
    const bool last_round = round + 1 == rounds;

    // Per-round dedup/replay table: the idempotency token of each routed
    // request (fresh per round — rounds deliberately re-solve) and whether
    // its result has already been resolved, so a duplicate result of a
    // retried request can never resolve twice.
    std::vector<std::uint64_t> tokens(routed.size(), 0);
    std::vector<char> resolved(routed.size(), 0);

    const auto resolve = [&](std::size_t ri, service::SolveResult result,
                             double latency_seconds) {
      if (resolved[ri]) {
        ++transport_stats_.duplicates_dropped;
        return;
      }
      resolved[ri] = 1;
      result.latency_seconds = latency_seconds;
      if (seen++ % stride == 0) {
        report.latencies.add(latency_seconds);
      }
      if (last_round) {
        // Journal the final result before it becomes client-visible: a
        // primary killed between the two faultpoints below proves the
        // standby emits journaled results verbatim instead of re-solving.
        support::faultpoint("router.before_journal");
        journal(JournalRecord::resolved(routed[ri].index, tokens[ri], result));
        support::faultpoint("router.after_journal");
        report.results[routed[ri].index] = std::move(result);
      }
    };

    // Request queue per worker: requests in file order, each on its first
    // alive primed owner.
    std::vector<std::deque<std::size_t>> queues(workers_.size());
    std::vector<std::map<std::uint64_t, InFlight>> in_flight(workers_.size());

    const auto route = [&](std::size_t ri) {
      for (const std::uint32_t owner : routed[ri].place->owners) {
        if (workers_[owner].alive) {
          queues[owner].push_back(ri);
          return true;
        }
      }
      return false;
    };
    for (std::size_t ri = 0; ri < routed.size(); ++ri) {
      if (!route(ri)) {
        resolve(ri,
                no_owner_failure(routed[ri].request->solver,
                                 "no alive shard worker owns instance '" +
                                     routed[ri].request->instance_name + "'"),
                0.0);
      }
    }

    // Feeds one data-plane payload through the result machinery: stale
    // control echoes are skipped, duplicates dropped, live results
    // resolved.  False only on protocol corruption (caller fails the
    // worker over).
    const auto process_result_payload = [&](std::size_t w,
                                            const std::string& frame) {
      if (wire::message_type(frame) != "result") {
        return true;  // stale pong/drained from an earlier exchange
      }
      const auto message = wire::decode_result(frame);
      if (!message) {
        return false;  // protocol corruption
      }
      const auto it = in_flight[w].find(message->id);
      if (it == in_flight[w].end()) {
        ++transport_stats_.duplicates_dropped;
        return true;  // duplicate/stale id; drop
      }
      const double latency = seconds_since(it->second.sent);
      const std::size_t ri = it->second.routed_index;
      in_flight[w].erase(it);
      resolve(ri, message->result, latency);
      return true;
    };

    // A dead worker's queued work fails over to the next alive replica
    // owner — already primed, that is what replication > 1 buys.  Its
    // *in-flight* work is retried there too, under the same idempotency
    // token: the dead worker may or may not have solved it, but a replica
    // solves each token at most once and `resolved` drops any duplicate
    // result, so the retry is safe (effectively-once), not blind.  With no
    // alive replica, in-flight work fails typed.
    const auto handle_death = [&](std::size_t w) {
      // Results the dying worker already published are real completions —
      // on the shm plane they sit in the response ring after the POLLHUP,
      // on the socketpair they sit in the kernel buffer.  Deliver them
      // before failing anything over.
      if (workers_[w].plane != nullptr) {
        std::string leftover;
        while (workers_[w].plane->recv(&leftover, Clock::time_point::min()) ==
               net::RingStatus::Ok) {
          if (!process_result_payload(w, leftover)) {
            break;  // corrupt tail of a dying stream: stop salvaging
          }
        }
      }
      mark_dead(w);
      for (const auto& [id, flight] : in_flight[w]) {
        const std::size_t ri = flight.routed_index;
        support::faultpoint("router.before_retry");
        if (route(ri)) {
          ++transport_stats_.retries_replayed;
          continue;  // queued on a replica; top_up re-sends it
        }
        resolve(ri,
                service::SolveResult::failure(
                    routed[ri].request->solver,
                    service::ErrorCode::SolverFailure,
                    "shard worker " + std::to_string(w) +
                        " died mid-solve; the request may or may not have "
                        "executed"),
                seconds_since(flight.sent));
      }
      in_flight[w].clear();
      const std::deque<std::size_t> orphans = std::move(queues[w]);
      queues[w].clear();
      for (const std::size_t ri : orphans) {
        if (!route(ri)) {
          resolve(ri,
                  service::SolveResult::failure(
                      routed[ri].request->solver,
                      service::ErrorCode::SolverFailure,
                      "shard worker " + std::to_string(w) +
                          " died with the request queued and no alive "
                          "replica owns instance '" +
                          routed[ri].request->instance_name + "'"),
                  0.0);
        }
      }
    };

    const auto top_up = [&](std::size_t w) {
      while (workers_[w].alive && !queues[w].empty() &&
             in_flight[w].size() < options_.window) {
        const std::size_t ri = queues[w].front();
        wire::SolveMessage message;
        message.id = ++next_wire_id_;
        if (tokens[ri] == 0) {
          const std::size_t bi = routed[ri].index;
          if (last_round && bi < run_options.preset_tokens.size() &&
              run_options.preset_tokens[bi] != 0) {
            // Takeover replay: reuse the token the primary put in flight,
            // so a surviving worker that completed it answers from its
            // memo instead of re-solving.
            tokens[ri] = run_options.preset_tokens[bi];
          } else {
            tokens[ri] = ++next_token_;  // first send; retries reuse it
          }
          if (last_round) {
            // Only final-round work enters the standby's in-flight table:
            // earlier rounds exist to warm caches and their results are
            // never client-visible, so replaying them buys nothing.
            journal(JournalRecord::flight(tokens[ri], bi));
          }
        }
        message.token = tokens[ri];
        message.priority_weight = routed[ri].request->priority_weight;
        message.deadline_seconds = routed[ri].request->deadline_seconds;
        message.solver = routed[ri].request->solver;
        message.instance_name = routed[ri].request->instance_name;
        const std::string solve_frame =
            wire::encode_solve(message, workers_[w].plane->dialect());
        const bool duplicate_send =
            support::faultpoint("router.before_forward") ==
            support::FaultAction::Dup;
        auto status = workers_[w].plane->send(solve_frame,
                                              Clock::now() + kSendBudget);
        if (duplicate_send && status == net::RingStatus::Ok) {
          // Inject the duplicate-delivery fault: the same solve frame twice
          // under one wire id.  The worker's token memo and the router's
          // dedup must make this invisible to the client.
          status = workers_[w].plane->send(solve_frame,
                                           Clock::now() + kSendBudget);
        }
        support::faultpoint("router.after_forward");
        if (status == net::RingStatus::TooBig) {
          // A solve frame that cannot ever fit the ring (absurd solver or
          // instance name): fail the request typed, keep the worker.
          queues[w].pop_front();
          resolve(ri,
                  service::SolveResult::failure(
                      routed[ri].request->solver,
                      service::ErrorCode::SolverFailure,
                      "request exceeds the shm data-plane ring capacity"),
                  0.0);
          continue;
        }
        if (status != net::RingStatus::Ok) {
          handle_death(w);
          return;
        }
        queues[w].pop_front();
        in_flight[w].emplace(message.id, InFlight{ri, Clock::now()});
      }
    };

    const auto any_in_flight = [&] {
      for (const auto& flights : in_flight) {
        if (!flights.empty()) {
          return true;
        }
      }
      return false;
    };
    const auto any_queued = [&] {
      for (const auto& queue : queues) {
        if (!queue.empty()) {
          return true;
        }
      }
      return false;
    };

    std::string payload;
    for (;;) {
      // The replication heartbeat rides this loop: it cycles at least every
      // doorbell slice / poll timeout even while every worker is pinned by
      // a long solve, so a slow fleet never looks dead to the standby.
      maybe_heartbeat();
      // Top up at the head of every pass so work re-routed by handle_death
      // (possibly onto a worker that was already idle) is always sent —
      // the failover contract must not depend on something else being in
      // flight at the moment a worker died.
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        top_up(w);
      }
      if (!any_in_flight()) {
        if (!any_queued()) {
          break;  // round complete (or every remaining request resolved)
        }
        // A death during top-up re-routed queued work; send it next pass.
        // Queues only ever hold work for alive workers (handle_death
        // drains a dead worker's queue), so each pass makes progress.
        continue;
      }
      // --- wait: sleep only when no worker's plane has a frame ready.
      bool ready = false;
      bool shm_pending = false;
      for (std::size_t w = 0; w < workers_.size() && !ready; ++w) {
        if (!workers_[w].alive || in_flight[w].empty()) {
          continue;
        }
        ready = workers_[w].plane->recv_ready();
        shm_pending = shm_pending ||
                      workers_[w].plane->dialect() == wire::Dialect::Binary;
      }
      if (!ready) {
        if (shm_pending && doorbell_ != nullptr) {
          // Multiplexed futex wait over every response ring: announce the
          // wait, re-check each plane (a push between the check above and
          // here bumps the doorbell, making the wait return immediately),
          // then sleep one bounded slice.  The slice also paces dead-peer
          // checks — a SIGKILLed worker never rings.
          const std::uint32_t seen = net::doorbell_begin_wait(*doorbell_);
          bool rang = false;
          for (std::size_t w = 0; w < workers_.size() && !rang; ++w) {
            rang = workers_[w].alive && !in_flight[w].empty() &&
                   workers_[w].plane->recv_ready();
          }
          if (!rang) {
            net::doorbell_wait(*doorbell_, seen,
                               standby_fd_ >= 0
                                   ? std::min(kDoorbellSlice,
                                              options_.heartbeat_interval)
                                   : kDoorbellSlice);
          }
          net::doorbell_end_wait(*doorbell_);
        } else {
          std::vector<struct pollfd> pfds;
          for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (workers_[w].alive && !in_flight[w].empty()) {
              pfds.push_back({workers_[w].fd, POLLIN, 0});
            }
          }
          if (pfds.empty()) {
            continue;  // unreachable belt-and-braces: in-flight implies alive
          }
          // Finite timeout only so a forgotten-wakeup bug cannot hang
          // forever; results normally wake the poll directly.  With a
          // standby attached, the slice is additionally bounded by the
          // heartbeat interval: a fleet pinned by long solves must still
          // pulse the replication stream on schedule, or a slow primary
          // becomes indistinguishable from a dead one.
          const int slice =
              standby_fd_ >= 0
                  ? static_cast<int>(std::min<std::int64_t>(
                        500, options_.heartbeat_interval.count()))
                  : 500;
          (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), slice);
        }
      }

      // --- drain: pull everything each plane has, plane-blind.  A recv of
      // Timeout means "nothing more right now"; Closed/DeadPeer is death
      // (the shm plane's try-recv doubles as the POLLHUP check its ring
      // cannot perform).
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        if (!workers_[w].alive || in_flight[w].empty()) {
          continue;
        }
        for (;;) {
          const auto status =
              workers_[w].plane->recv(&payload, Clock::time_point::min());
          if (status == net::RingStatus::Ok) {
            if (!process_result_payload(w, payload)) {
              handle_death(w);  // protocol corruption: fail over
              break;
            }
            continue;
          }
          if (status == net::RingStatus::Timeout) {
            break;  // drained dry for this pass
          }
          handle_death(w);  // Closed or DeadPeer
          break;
        }
      }
    }
  }

  // The run is complete and every result journaled: tell the standby to
  // stand down instead of letting it take over on the post-run silence.
  journal(JournalRecord::done());

  // --- Aggregate worker cache stats: the fleet's cache is the disjoint
  // union of the shards, so sums are the right aggregation.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const auto stats = worker_cache_stats(w);
    if (!stats) {
      continue;
    }
    report.cache.hits += stats->hits;
    report.cache.misses += stats->misses;
    report.cache.evictions += stats->evictions;
    report.cache.expired += stats->expired;
    report.cache.admitted += stats->admitted;
    report.cache.rejected += stats->rejected;
    report.cache.entries += stats->entries;
    report.cache.weight += stats->weight;
    report.cache.capacity += stats->capacity;
  }

  report.total_solves = seen;
  report.wall_seconds = seconds_since(run_start);
  return report;
}

std::optional<service::CacheStats> ShardRouter::worker_cache_stats(
    std::size_t worker, std::chrono::milliseconds timeout) {
  if (worker >= workers_.size() || !workers_[worker].alive) {
    return std::nullopt;
  }
  if (!wire::write_frame(workers_[worker].fd, "stats")) {
    mark_dead(worker);
    return std::nullopt;
  }
  // Absolute deadline across the whole exchange: each stale frame consumes
  // budget instead of re-arming it, so a peer streaming junk cannot pin
  // the router here indefinitely.
  const auto deadline = Clock::now() + timeout;
  std::string payload;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0 || !read_frame_from(worker, &payload, left)) {
      return std::nullopt;
    }
    const auto stats = wire::decode_stats(payload);
    if (!stats) {
      continue;  // stale pong/drained from an earlier exchange
    }
    return stats;
  }
}

FleetCacheSummary ShardRouter::fleet_cache_summary(
    std::chrono::milliseconds timeout) {
  FleetCacheSummary summary;
  summary.configured = workers_.size();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const auto stats = worker_cache_stats(w, timeout);
    if (!stats) {
      continue;  // dead or unresponsive: it must not dilute the means
    }
    ++summary.alive;
    summary.total.hits += stats->hits;
    summary.total.misses += stats->misses;
    summary.total.evictions += stats->evictions;
    summary.total.expired += stats->expired;
    summary.total.admitted += stats->admitted;
    summary.total.rejected += stats->rejected;
    summary.total.entries += stats->entries;
    summary.total.weight += stats->weight;
    summary.total.capacity += stats->capacity;
  }
  return summary;
}

}  // namespace malsched::shard
