#include "malsched/shard/hash_ring.hpp"

#include <algorithm>

#include "malsched/support/contracts.hpp"

namespace malsched::shard {

namespace {

/// splitmix64: the canonical 64-bit finalizer — every input bit avalanches
/// into every output bit, so consecutive (node, replica) pairs land
/// uniformly on the circle.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t point_position(std::uint32_t node, std::size_t replica) {
  // Two rounds decorrelate node and replica completely; a single round of
  // the packed pair already avalanches, the second is cheap insurance.
  return mix64(mix64((static_cast<std::uint64_t>(node) << 32) |
                     static_cast<std::uint64_t>(replica & 0xFFFFFFFF)));
}

}  // namespace

HashRing::HashRing(std::size_t vnodes)
    : default_vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::add_node(std::uint32_t node, std::size_t vnodes) {
  if (contains(node)) {
    return;
  }
  const std::size_t count = vnodes == 0 ? default_vnodes_ : vnodes;
  points_.reserve(points_.size() + count);
  for (std::size_t replica = 0; replica < count; ++replica) {
    points_.push_back(Point{point_position(node, replica), node});
  }
  std::sort(points_.begin(), points_.end());
  vnode_counts_.emplace(node, count);
}

bool HashRing::remove_node(std::uint32_t node) {
  const auto it = vnode_counts_.find(node);
  if (it == vnode_counts_.end()) {
    return false;
  }
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [node](const Point& point) {
                                 return point.node == node;
                               }),
                points_.end());
  vnode_counts_.erase(it);
  return true;
}

bool HashRing::contains(std::uint32_t node) const {
  return vnode_counts_.count(node) != 0;
}

std::vector<std::uint32_t> HashRing::nodes() const {
  std::vector<std::uint32_t> result;
  result.reserve(vnode_counts_.size());
  for (const auto& [node, count] : vnode_counts_) {
    result.push_back(node);
  }
  return result;
}

std::uint32_t HashRing::owner(std::uint64_t key) const {
  MALSCHED_EXPECTS_MSG(!points_.empty(), "owner() on an empty hash ring");
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& point, std::uint64_t k) { return point.position < k; });
  return it == points_.end() ? points_.front().node : it->node;
}

std::vector<std::uint32_t> HashRing::owners(std::uint64_t key,
                                            std::size_t replicas) const {
  MALSCHED_EXPECTS_MSG(!points_.empty(), "owners() on an empty hash ring");
  const std::size_t want = std::min(replicas, vnode_counts_.size());
  std::vector<std::uint32_t> result;
  result.reserve(want);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& point, std::uint64_t k) { return point.position < k; });
  // Walk at most one full revolution collecting distinct nodes in clockwise
  // order — the successor list of the key.
  for (std::size_t step = 0; step < points_.size() && result.size() < want;
       ++step, ++it) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    if (std::find(result.begin(), result.end(), it->node) == result.end()) {
      result.push_back(it->node);
    }
  }
  return result;
}

}  // namespace malsched::shard
