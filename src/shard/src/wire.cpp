#include "malsched/shard/wire.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <sstream>
#include <utility>
#include <vector>

namespace malsched::shard::wire {

namespace {

// %a prints the shortest exact hexfloat; strtod parses it back to the
// identical bit pattern — the round-trip the sharded determinism contract
// rides on.
std::string hex_double(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

bool parse_hex_double(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return false;
  }
  *out = value;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return false;
  }
  *out = value;
  return true;
}

// Error detail messages are free text (may embed quotes/newlines); the
// escape rules are service::escape_result_text — one implementation shared
// with write_results, since the wire format and the human result stream
// are one dialect by design.

// key=value field of a space-separated header line; empty when absent.
// The scan is quote-aware: a `message="... latency=0.5 ..."` value must
// never shadow the real ` latency=` field that follows it, so key matches
// inside quoted values are skipped (error details embed arbitrary solver
// exception text).
std::string field(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size();) {
    if (in_quotes) {
      if (line[i] == '\\') {
        i += 2;  // step over the escape pair; a trailing '\' just ends
        continue;
      }
      in_quotes = line[i] != '"';
      ++i;
      continue;
    }
    if (line[i] == '"') {
      in_quotes = true;
      ++i;
      continue;
    }
    if ((i == 0 || line[i - 1] == ' ') &&
        line.compare(i, needle.size(), needle) == 0) {
      const std::size_t begin = i + needle.size();
      if (begin < line.size() && line[begin] == '"') {
        // Quoted value: scan to the closing unescaped quote, stepping over
        // escape pairs so a trailing `\\` does not hide the real close.
        std::size_t end = begin + 1;
        while (end < line.size() && line[end] != '"') {
          if (line[end] == '\\' && end + 1 < line.size()) {
            ++end;
          }
          ++end;
        }
        return line.substr(begin + 1, end - begin - 1);
      }
      auto end = line.find(' ', begin);
      if (end == std::string::npos) {
        end = line.size();
      }
      return line.substr(begin, end - begin);
    }
    ++i;
  }
  return "";
}

// --- binary dialect primitives ---
//
// Fixed-width little-endian integers; doubles travel as their raw IEEE-754
// bit pattern through a u64.  memcpy (not a reinterpret_cast) keeps both
// directions free of aliasing/alignment traps, and "the bits are the
// value" is what makes the dialect bit-identical by construction — NaN
// payloads, -0.0 and subnormals included, with no formatter in the loop.

void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void put_f64(std::string& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::string& out, const std::string& text) {
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out += text;
}

// Bounds-checked cursor over a binary payload.  Every get_* fails sticky
// (ok_ = false) on underrun, so decoders read the whole message and check
// once — a truncated or corrupted frame decodes to nullopt, never UB.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& payload) : payload_(payload) {}

  std::uint8_t get_u8() {
    if (!take(1)) {
      return 0;
    }
    return static_cast<std::uint8_t>(payload_[at_ - 1]);
  }

  std::uint32_t get_u32() {
    if (!take(4)) {
      return 0;
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(payload_[at_ - 4 + i]))
               << (8 * i);
    }
    return value;
  }

  std::uint64_t get_u64() {
    if (!take(8)) {
      return 0;
    }
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(payload_[at_ - 8 + i]))
               << (8 * i);
    }
    return value;
  }

  double get_f64() {
    const std::uint64_t bits = get_u64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof value);
    return value;
  }

  std::string get_string() {
    const std::uint32_t length = get_u32();
    if (!take(length)) {
      return "";
    }
    return payload_.substr(at_ - length, length);
  }

  [[nodiscard]] std::size_t remaining() const { return payload_.size() - at_; }
  /// True iff no read ran past the end AND the payload was consumed
  /// exactly — trailing garbage is corruption, same as truncation.
  [[nodiscard]] bool done() const { return ok_ && at_ == payload_.size(); }

 private:
  bool take(std::size_t bytes) {
    if (!ok_ || payload_.size() - at_ < bytes) {
      ok_ = false;
      return false;
    }
    at_ += bytes;
    return true;
  }

  const std::string& payload_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

bool is_binary(const std::string& payload, unsigned char tag) {
  return !payload.empty() &&
         static_cast<unsigned char>(payload[0]) == tag;
}

}  // namespace

std::string encode_hello(const HelloMessage& message) {
  return std::string("hello ") + kWireMagic + " " +
         std::to_string(message.version) + " " +
         (message.role.empty() ? "peer" : message.role);
}

std::optional<HelloMessage> decode_hello(const std::string& payload) {
  std::istringstream in(payload);
  std::string keyword, magic, version_text;
  HelloMessage message;
  if (!(in >> keyword >> magic >> version_text >> message.role) ||
      keyword != "hello" || magic != kWireMagic) {
    return std::nullopt;
  }
  std::uint64_t version = 0;
  if (!parse_u64(version_text, &version) || version > 0xFFFFFFFFull) {
    return std::nullopt;
  }
  message.version = static_cast<std::uint32_t>(version);
  return message;
}

std::optional<std::string> validate_hello(const std::string& payload,
                                          HelloMessage* peer) {
  const auto hello = decode_hello(payload);
  if (!hello) {
    // Quote a bounded prefix: the greeting is attacker-controlled bytes.
    std::string preview = payload.substr(0, 48);
    for (char& c : preview) {
      if (c < 0x20 || c > 0x7E) {
        c = '.';
      }
    }
    return "peer did not greet with '" + std::string(kWireMagic) +
           "' (got \"" + preview + "\")";
  }
  if (hello->version != kWireProtocolVersion) {
    return "peer speaks " + std::string(kWireMagic) + " version " +
           std::to_string(hello->version) + ", this build speaks " +
           std::to_string(kWireProtocolVersion);
  }
  if (peer != nullptr) {
    *peer = *hello;
  }
  return std::nullopt;
}

bool handshake(int fd, const std::string& role,
               std::chrono::milliseconds timeout, std::string* reason) {
  HelloMessage mine;
  mine.role = role;
  if (!write_frame(fd, encode_hello(mine))) {
    if (reason != nullptr) {
      *reason = "peer closed the connection before the handshake";
    }
    return false;
  }
  std::string greeting;
  FrameError frame_error = FrameError::None;
  if (!read_frame_deadline(fd, &greeting,
                           std::chrono::steady_clock::now() + timeout,
                           &frame_error)) {
    if (reason != nullptr) {
      *reason = std::string("no greeting from peer (") +
                frame_error_name(frame_error) + ")";
    }
    return false;
  }
  const auto mismatch = validate_hello(greeting);
  if (mismatch) {
    if (reason != nullptr) {
      *reason = *mismatch;
    }
    return false;
  }
  return true;
}

std::string message_type(const std::string& payload) {
  if (is_binary(payload, kBinaryInstanceTag)) {
    return "instance";
  }
  if (is_binary(payload, kBinarySolveTag)) {
    return "solve";
  }
  if (is_binary(payload, kBinaryResultTag)) {
    return "result";
  }
  std::size_t begin = 0;
  while (begin < payload.size() && payload[begin] == ' ') {
    ++begin;
  }
  std::size_t end = begin;
  while (end < payload.size() && payload[end] != ' ' &&
         payload[end] != '\n') {
    ++end;
  }
  return payload.substr(begin, end - begin);
}

std::string encode_instance(const std::string& name,
                            const core::Instance& instance,
                            Dialect dialect) {
  if (dialect == Dialect::Binary) {
    std::string payload;
    payload.reserve(1 + 4 + name.size() + 8 + 4 + 24 * instance.size());
    put_u8(payload, kBinaryInstanceTag);
    put_string(payload, name);
    put_f64(payload, instance.processors());
    put_u32(payload, static_cast<std::uint32_t>(instance.size()));
    for (const core::Task& task : instance.tasks()) {
      put_f64(payload, task.volume);
      put_f64(payload, task.width);
      put_f64(payload, task.weight);
    }
    return payload;
  }
  std::string payload = "instance " + name + "\n";
  payload += hex_double(instance.processors());
  payload += ' ';
  payload += std::to_string(instance.size());
  payload += '\n';
  for (const core::Task& task : instance.tasks()) {
    payload += hex_double(task.volume);
    payload += ' ';
    payload += hex_double(task.width);
    payload += ' ';
    payload += hex_double(task.weight);
    payload += '\n';
  }
  return payload;
}

std::optional<InstanceMessage> decode_instance(const std::string& payload) {
  if (is_binary(payload, kBinaryInstanceTag)) {
    BinaryReader in(payload);
    (void)in.get_u8();  // tag
    InstanceMessage message;
    message.name = in.get_string();
    const double processors = in.get_f64();
    const std::uint32_t count = in.get_u32();
    // Same corrupted-count guard as the text decoder: every task is
    // exactly 24 bytes here, so a count the remaining bytes cannot hold
    // is rejected before reserve() turns it into a giant allocation.
    if (count > in.remaining() / 24) {
      return std::nullopt;
    }
    if (processors <= 0.0) {  // the exact check the text decoder applies
      return std::nullopt;
    }
    std::vector<core::Task> tasks;
    tasks.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      core::Task task;
      task.volume = in.get_f64();
      task.width = in.get_f64();
      task.weight = in.get_f64();
      if (task.volume < 0.0 || task.width <= 0.0 || task.weight < 0.0) {
        return std::nullopt;
      }
      tasks.push_back(task);
    }
    if (!in.done()) {
      return std::nullopt;
    }
    message.instance.emplace(processors, std::move(tasks));
    return message;
  }
  std::istringstream in(payload);
  std::string keyword;
  InstanceMessage message;
  if (!(in >> keyword >> message.name) || keyword != "instance") {
    return std::nullopt;
  }
  std::string processors_text;
  std::uint64_t count = 0;
  std::string count_text;
  if (!(in >> processors_text >> count_text) ||
      !parse_u64(count_text, &count)) {
    return std::nullopt;
  }
  double processors = 0.0;
  if (!parse_hex_double(processors_text, &processors) || processors <= 0.0) {
    return std::nullopt;
  }
  // A real task line is >= ~20 payload bytes (three hexfloats), so a count
  // beyond size/16 is a corrupted header — reject it before reserve() turns
  // it into a giant allocation (the same class of fault kMaxFrameBytes
  // guards against at the frame layer).
  if (count > payload.size() / 16) {
    return std::nullopt;
  }
  std::vector<core::Task> tasks;
  tasks.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string v, d, w;
    core::Task task;
    if (!(in >> v >> d >> w) || !parse_hex_double(v, &task.volume) ||
        !parse_hex_double(d, &task.width) ||
        !parse_hex_double(w, &task.weight) || task.volume < 0.0 ||
        task.width <= 0.0 || task.weight < 0.0) {
      return std::nullopt;
    }
    tasks.push_back(task);
  }
  message.instance.emplace(processors, std::move(tasks));
  return message;
}

std::string encode_solve(const SolveMessage& message, Dialect dialect) {
  if (dialect == Dialect::Binary) {
    std::string payload;
    payload.reserve(1 + 8 + 8 + 8 + 1 + 8 + 8 + message.solver.size() +
                    message.instance_name.size());
    put_u8(payload, kBinarySolveTag);
    put_u64(payload, message.id);
    put_u64(payload, message.token);
    put_f64(payload, message.priority_weight);
    put_u8(payload, message.deadline_seconds ? 1 : 0);
    if (message.deadline_seconds) {
      put_f64(payload, *message.deadline_seconds);
    }
    put_string(payload, message.solver);
    put_string(payload, message.instance_name);
    return payload;
  }
  std::string payload = "solve " + std::to_string(message.id) + " " +
                        std::to_string(message.token) + " " +
                        hex_double(message.priority_weight) + " ";
  payload += message.deadline_seconds ? hex_double(*message.deadline_seconds)
                                      : std::string("-");
  payload += " " + message.solver + " " + message.instance_name;
  return payload;
}

std::optional<SolveMessage> decode_solve(const std::string& payload) {
  if (is_binary(payload, kBinarySolveTag)) {
    BinaryReader in(payload);
    (void)in.get_u8();  // tag
    SolveMessage message;
    message.id = in.get_u64();
    message.token = in.get_u64();
    message.priority_weight = in.get_f64();
    const std::uint8_t has_deadline = in.get_u8();
    if (has_deadline > 1) {
      return std::nullopt;
    }
    if (has_deadline == 1) {
      const double seconds = in.get_f64();
      if (seconds < 0.0) {
        return std::nullopt;
      }
      message.deadline_seconds = seconds;
    }
    message.solver = in.get_string();
    message.instance_name = in.get_string();
    if (!in.done()) {
      return std::nullopt;
    }
    return message;
  }
  std::istringstream in(payload);
  std::string keyword, id_text, token_text, weight_text, deadline_text;
  SolveMessage message;
  if (!(in >> keyword >> id_text >> token_text >> weight_text >>
        deadline_text >> message.solver >> message.instance_name) ||
      keyword != "solve" || !parse_u64(id_text, &message.id) ||
      !parse_u64(token_text, &message.token) ||
      !parse_hex_double(weight_text, &message.priority_weight)) {
    return std::nullopt;
  }
  if (deadline_text != "-") {
    double seconds = 0.0;
    if (!parse_hex_double(deadline_text, &seconds) || seconds < 0.0) {
      return std::nullopt;
    }
    message.deadline_seconds = seconds;
  }
  return message;
}

std::string encode_result(std::uint64_t id, std::uint64_t token,
                          const service::SolveResult& result,
                          Dialect dialect) {
  if (dialect == Dialect::Binary) {
    // Length-prefixed strings need no quoting/escaping: the solver name
    // and error detail travel verbatim, whatever bytes they hold.
    std::string payload;
    put_u8(payload, kBinaryResultTag);
    put_u64(payload, id);
    put_u64(payload, token);
    put_string(payload, result.solver);
    put_f64(payload, result.latency_seconds);
    if (result.ok()) {
      put_u8(payload, 1);
      put_f64(payload, result.objective());
      put_f64(payload, result.makespan());
      put_u8(payload, result.cache_hit ? 1 : 0);
      const auto& completions = result.completions();
      put_u32(payload, static_cast<std::uint32_t>(completions.size()));
      for (const double completion : completions) {
        put_f64(payload, completion);
      }
    } else {
      put_u8(payload, 0);
      put_u8(payload, static_cast<std::uint8_t>(result.error().code));
      put_string(payload, result.error().detail);
    }
    return payload;
  }
  // The solver name is client-controlled (any whitespace-free token, quotes
  // included) — emit it *quoted* so field()'s quote tracking stays in sync
  // with the writer and a quote in the name cannot desynchronize the scan
  // of the fields that follow.
  std::string payload = "result " + std::to_string(id) +
                        " token=" + std::to_string(token) + " solver=\"" +
                        service::escape_result_text(result.solver) + "\"";
  if (result.ok()) {
    payload += " status=ok objective=" + hex_double(result.objective()) +
               " makespan=" + hex_double(result.makespan()) +
               " cache_hit=" + (result.cache_hit ? std::string("1") : "0") +
               " latency=" + hex_double(result.latency_seconds);
    for (const double completion : result.completions()) {
      payload += '\n';
      payload += hex_double(completion);
    }
  } else {
    payload += " status=error code=";
    payload += service::error_code_name(result.error().code);
    payload += " message=\"" + service::escape_result_text(result.error().detail) + "\"" +
               " latency=" + hex_double(result.latency_seconds);
  }
  return payload;
}

std::optional<ResultMessage> decode_result(const std::string& payload) {
  if (is_binary(payload, kBinaryResultTag)) {
    BinaryReader in(payload);
    (void)in.get_u8();  // tag
    ResultMessage message;
    message.id = in.get_u64();
    message.token = in.get_u64();
    const std::string solver = in.get_string();
    const double latency = in.get_f64();
    const std::uint8_t status = in.get_u8();
    if (status == 1) {
      service::SolveOutput output;
      output.objective = in.get_f64();
      output.makespan = in.get_f64();
      const std::uint8_t cache_hit = in.get_u8();
      if (cache_hit > 1) {
        return std::nullopt;
      }
      const std::uint32_t count = in.get_u32();
      if (count > in.remaining() / 8) {  // corrupted-count allocation guard
        return std::nullopt;
      }
      output.completions.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        output.completions.push_back(in.get_f64());
      }
      message.result =
          service::SolveResult::success(solver, std::move(output));
      message.result.cache_hit = cache_hit == 1;
    } else if (status == 0) {
      // The code travels as a u8 and is validated against the enumeration
      // — an out-of-range byte is corruption, exactly like an unknown
      // kebab-case name in the text dialect.
      const std::uint8_t code = in.get_u8();
      if (code >= std::size(service::kAllErrorCodes)) {
        return std::nullopt;
      }
      const std::string detail = in.get_string();
      message.result = service::SolveResult::failure(
          solver, static_cast<service::ErrorCode>(code), detail);
    } else {
      return std::nullopt;
    }
    if (!in.done()) {
      return std::nullopt;
    }
    message.result.latency_seconds = latency;
    return message;
  }
  auto header_end = payload.find('\n');
  if (header_end == std::string::npos) {
    header_end = payload.size();
  }
  const std::string header = payload.substr(0, header_end);

  std::istringstream in(header);
  std::string keyword, id_text;
  if (!(in >> keyword >> id_text) || keyword != "result") {
    return std::nullopt;
  }
  ResultMessage message;
  if (!parse_u64(id_text, &message.id) ||
      !parse_u64(field(header, "token"), &message.token)) {
    return std::nullopt;
  }
  const std::string solver = service::unescape_result_text(field(header, "solver"));
  const std::string status = field(header, "status");
  double latency = 0.0;
  if (!parse_hex_double(field(header, "latency"), &latency)) {
    return std::nullopt;
  }

  if (status == "ok") {
    service::SolveOutput output;
    if (!parse_hex_double(field(header, "objective"), &output.objective) ||
        !parse_hex_double(field(header, "makespan"), &output.makespan)) {
      return std::nullopt;
    }
    // Completion times follow, one hexfloat per line.
    std::size_t cursor = header_end;
    while (cursor < payload.size()) {
      ++cursor;  // skip the newline
      auto line_end = payload.find('\n', cursor);
      if (line_end == std::string::npos) {
        line_end = payload.size();
      }
      if (line_end > cursor) {
        double completion = 0.0;
        if (!parse_hex_double(payload.substr(cursor, line_end - cursor),
                              &completion)) {
          return std::nullopt;
        }
        output.completions.push_back(completion);
      }
      cursor = line_end;
    }
    message.result =
        service::SolveResult::success(solver, std::move(output));
    message.result.cache_hit = field(header, "cache_hit") == "1";
  } else if (status == "error") {
    const auto code = service::parse_error_code(field(header, "code"));
    if (!code) {
      return std::nullopt;
    }
    message.result = service::SolveResult::failure(
        solver, *code, service::unescape_result_text(field(header, "message")));
  } else {
    return std::nullopt;
  }
  message.result.latency_seconds = latency;
  return message;
}

std::string encode_stats(const service::CacheStats& stats) {
  std::string payload = "stats";
  payload += " hits=" + std::to_string(stats.hits);
  payload += " misses=" + std::to_string(stats.misses);
  payload += " evictions=" + std::to_string(stats.evictions);
  payload += " expired=" + std::to_string(stats.expired);
  payload += " admitted=" + std::to_string(stats.admitted);
  payload += " rejected=" + std::to_string(stats.rejected);
  payload += " entries=" + std::to_string(stats.entries);
  payload += " weight=" + std::to_string(stats.weight);
  payload += " capacity=" + std::to_string(stats.capacity);
  return payload;
}

std::optional<service::CacheStats> decode_stats(const std::string& payload) {
  if (message_type(payload) != "stats") {
    return std::nullopt;
  }
  service::CacheStats stats;
  std::uint64_t entries = 0, weight = 0, capacity = 0;
  if (!parse_u64(field(payload, "hits"), &stats.hits) ||
      !parse_u64(field(payload, "misses"), &stats.misses) ||
      !parse_u64(field(payload, "evictions"), &stats.evictions) ||
      !parse_u64(field(payload, "expired"), &stats.expired) ||
      !parse_u64(field(payload, "admitted"), &stats.admitted) ||
      !parse_u64(field(payload, "rejected"), &stats.rejected) ||
      !parse_u64(field(payload, "entries"), &entries) ||
      !parse_u64(field(payload, "weight"), &weight) ||
      !parse_u64(field(payload, "capacity"), &capacity)) {
    return std::nullopt;
  }
  stats.entries = entries;
  stats.weight = weight;
  stats.capacity = capacity;
  return stats;
}

}  // namespace malsched::shard::wire
