#pragma once

/// \file cache.hpp
/// Sharded LRU memo of canonical-space solve results, with size-aware
/// eviction.
///
/// Keys are `solver + '\n' + canonical_text(form)` strings; values are the
/// solver output on the *canonical* instance, so one entry serves every
/// scaled/permuted variant of the instance (the solve path denormalizes per
/// request).  Striped mutexes keep concurrent workers from serializing on
/// one lock; hit/miss/eviction counters feed the service telemetry.
///
/// Capacity is counted in *weight units*, not entries: an entry weighs
/// 1 + completions.size(), so a memoized n = 500 solve costs ~500x the
/// budget of an n = 4 one and large instances cannot crowd the cache out of
/// proportion to their footprint.
///
/// Time axis (optional): `CacheOptions::ttl` bounds how long an entry may
/// serve hits.  Expiry is *lazy* — an expired entry is evicted at the
/// lookup that finds it (counted as a miss plus an `expired` eviction);
/// nothing scans the cache in the background, so an idle cache costs
/// nothing and a full one ages out exactly as fast as traffic touches it.
/// Entries past their deadline but never looked up again are reclaimed by
/// ordinary LRU eviction — they are by definition the least recently used.
///
/// Admission (optional): `CacheOptions::admission` puts a per-shard TinyLFU
/// popularity filter (tinylfu.hpp) in front of capacity eviction.  Every
/// lookup and every new-key insert feeds the filter; when inserting a *new*
/// key would push the shard over budget, the insert must beat each LRU
/// victim it displaces on estimated popularity (ties admit, so an unskewed
/// stream still behaves like plain LRU).  A losing insert is dropped and
/// counted in `rejected` — the caller's value simply isn't memoized this
/// time; a recurring key accrues popularity with each arrival and is
/// admitted once it out-scores the resident tail.  Refreshes of resident
/// keys and TTL expiry bypass admission entirely (the `expired` counter is
/// unaffected).  Off by default so the raw cache keeps its historical
/// always-admit semantics; the scheduler turns it on for its owned cache.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "malsched/service/tinylfu.hpp"

namespace malsched::service {

/// Canonical-space value stored per (solver, canonical instance).
struct CachedSolve {
  double objective = 0.0;
  double makespan = 0.0;
  std::vector<double> completions;  ///< indexed by canonical task id
};

/// Weight of one cache entry: 1 (fixed bookkeeping) plus one unit per
/// completion time, i.e. O(n) in the instance size.
[[nodiscard]] inline std::size_t entry_weight(
    const CachedSolve& value) noexcept {
  return 1 + value.completions.size();
}

/// Construction knobs of ResultCache (the two-argument constructor remains
/// for capacity-only callers).
struct CacheOptions {
  /// Weight-unit budget across all shards; must be positive.
  std::size_t capacity = std::size_t{1} << 20;
  /// Independently locked segments (0 is clamped to 1).
  std::size_t shards = 8;
  /// Entries older than this stop serving hits and are evicted lazily at
  /// lookup; nullopt (the default) keeps entries until LRU eviction.
  std::optional<std::chrono::duration<double>> ttl;
  /// Gate over-budget inserts of new keys behind a TinyLFU popularity
  /// contest against the LRU victims they would evict.  Off by default:
  /// plain ResultCache users keep unconditional admission.
  bool admission = false;
  /// Sizing of the per-shard popularity sketch (ignored unless `admission`).
  TinyLfuOptions admission_sketch;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< capacity (LRU) evictions only
  std::uint64_t expired = 0;    ///< TTL evictions performed at lookup
  std::uint64_t admitted = 0;   ///< new-key inserts accepted (admission on)
  std::uint64_t rejected = 0;   ///< new-key inserts dropped by the filter
  std::size_t entries = 0;
  std::size_t weight = 0;    ///< current total weight across shards
  std::size_t capacity = 0;  ///< configured capacity, in weight units

  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe LRU cache striped over `shards` independently locked
/// segments.  Each shard holds at most ceil(capacity / shards) weight units
/// and evicts least-recently-used entries until back under budget.  An entry
/// heavier than a whole shard is admitted alone (the shard temporarily holds
/// just it), so oversized instances degrade to a 1-entry memo instead of
/// being uncacheable.
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8)
      : ResultCache(capacity_options(capacity, shards)) {}
  explicit ResultCache(const CacheOptions& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached value and refreshes its recency, or null (both
  /// outcomes bump the counters).  Hits are a refcount bump, not a copy of
  /// the completions vector, so readers of one shard don't serialize on
  /// value size.
  [[nodiscard]] std::shared_ptr<const CachedSolve> get(const std::string& key);

  /// Inserts or refreshes `key`; evicts the shard's LRU entries until the
  /// shard is back under its weight budget.  With admission enabled, a new
  /// key that would evict a strictly more popular victim is dropped instead
  /// (counted in `rejected`); refreshes always proceed.
  void put(const std::string& key, CachedSolve value);

  [[nodiscard]] CacheStats stats() const;
  void clear();

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] bool has_ttl() const noexcept { return ttl_.has_value(); }
  [[nodiscard]] bool has_admission() const noexcept { return admission_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedSolve> value;
    std::size_t weight = 0;
    /// Expiry deadline; meaningful only when the cache has a TTL.
    std::chrono::steady_clock::time_point expires{};
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::size_t weight = 0;  ///< sum of entry weights
    /// Popularity filter over this shard's key stream; null when the cache
    /// runs without admission.  Guarded by `mutex` like the rest.
    std::unique_ptr<TinyLfu> lfu;
  };

  static CacheOptions capacity_options(std::size_t capacity,
                                       std::size_t shards) {
    CacheOptions options;
    options.capacity = capacity;
    options.shards = shards;
    return options;
  }

  Shard& shard_for(std::size_t key_hash);

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_;
  std::size_t capacity_;
  std::optional<std::chrono::steady_clock::duration> ttl_;
  bool admission_ = false;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace malsched::service
