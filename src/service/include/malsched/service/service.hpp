#pragma once

/// \file service.hpp
/// Batch-file front door of the scheduling service.
///
/// Request file format (line-oriented, '#' comments, extending the
/// core/io.hpp instance syntax):
///
///     instance <name>          # opens an inline instance block
///     processors 4             #   ... core/io.hpp lines ...
///     task <volume> <width> <weight>
///     end                      # closes the block
///     generate <name> <family> <tasks> <processors> <seed>
///                              # named instance drawn from a core
///                              # generator family (core/generators.hpp),
///                              # so paper-scale workloads need one line
///     include <path>           # splices another batch file (its instances
///                              # and requests); relative to the including
///                              # file's directory
///     weight <w>               # sticky: priority weight of subsequent
///                              # solve lines (w > 0; default 1)
///     deadline <seconds>       # sticky: per-request latency budget of
///                              # subsequent solve lines, measured from the
///                              # request's own submission; 'deadline none'
///                              # clears it (the default)
///     solve <solver> <name>    # one request; any number, any order
///
/// The `weight`/`deadline` directives are lexically scoped to their own
/// file: an included file starts from the defaults and its settings do not
/// leak back into the includer.
///
/// `run_service` interns every named instance once, streams the requests
/// through a Scheduler (scheduler.hpp) and aggregates per-request latency
/// telemetry (p50/p99 via support::Sample).  `write_results` emits the
/// deterministic per-request answer stream (identical for every thread
/// count), with failures carrying their typed ErrorCode; telemetry goes
/// through `format_telemetry`, which callers print to stderr or logs.
/// Determinism caveat: requests under a `deadline` directive are wall-clock
/// dependent by definition (a slow machine may answer DeadlineExceeded
/// where a fast one answers ok) — the byte-identical-across-threads
/// contract covers batches without deadlines.

#include <cstddef>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/service/cache.hpp"
#include "malsched/service/scheduler.hpp"
#include "malsched/service/solver_registry.hpp"
#include "malsched/support/stats.hpp"

namespace malsched::service {

/// Parsed batch file: named instances plus the request list in file order.
struct BatchSpec {
  std::map<std::string, core::Instance> instances;
  struct Request {
    std::string solver;
    std::string instance_name;
    std::size_t line = 0;  ///< 1-based line of the `solve` statement
    /// Priority weight from the enclosing `weight` directive (1 when none).
    double priority_weight = 1.0;
    /// Latency budget from the enclosing `deadline` directive: seconds from
    /// this request's submission; unset when none (never expires).
    std::optional<double> deadline_seconds;
  };
  std::vector<Request> requests;
};

struct BatchReadOptions {
  /// Directory `include <path>` lines resolve relative paths against; ""
  /// means the process working directory.  Nested includes resolve against
  /// their own file's directory.
  std::string base_dir;
  /// Include nesting bound; also breaks include cycles.
  std::size_t max_include_depth = 16;
};

/// Parses a batch file; nullopt with `error` filled on failure.
[[nodiscard]] std::optional<BatchSpec> read_batch(
    std::istream& in, std::string* error = nullptr,
    const BatchReadOptions& options = {});
[[nodiscard]] std::optional<BatchSpec> parse_batch(
    const std::string& text, std::string* error = nullptr,
    const BatchReadOptions& options = {});

struct ServiceOptions {
  unsigned threads = 1;
  /// Cache weight budget (~1 unit per completion time, see cache.hpp);
  /// 0 disables the cache, same as use_cache = false.
  std::size_t cache_capacity = std::size_t{1} << 20;
  bool use_cache = true;
  /// Optional cache TTL in seconds (lazy expiry at lookup, see cache.hpp);
  /// unset keeps entries until LRU eviction.
  std::optional<double> cache_ttl_seconds;
  /// Rounds over the batch (> 1 exercises the warm cache); results are from
  /// the last round, latencies accumulate across all rounds.
  std::size_t repeat = 1;
  /// Admission queue bound of the underlying Scheduler.
  std::size_t queue_capacity = 1024;
  /// True restores the strict arrival-order admission of the v2 service;
  /// the default is the weighted-priority queue (scheduler.hpp), which cuts
  /// weighted mean response time on backlogged mixed-duration batches.
  bool fifo_admission = false;
};

/// Deadline budgets are clamped to ~31 years before the seconds→tick cast:
/// beyond that the cast would overflow (UB) and turn an effectively-infinite
/// budget into an instantly-expired one.  Shared by every surface that turns
/// a `deadline <seconds>` directive into a time point (run_service, the
/// shard workers).
inline constexpr double kMaxDeadlineBudgetSeconds = 1e9;

/// The one mapping from batch-level ServiceOptions to the Scheduler's own
/// options (cache sizing/TTL, admission mode, queue bound).  run_service
/// and the shard workers both serve through this, so the two serving modes
/// cannot drift apart option by option — which would silently break the
/// byte-identical sharded-output contract.  `repeat` is not a scheduler
/// concern and is ignored here (rounds are driven by the caller).
[[nodiscard]] Scheduler::Options make_scheduler_options(
    const ServiceOptions& options);

struct ServiceReport {
  std::vector<SolveResult> results;  ///< request order
  /// Seconds, one point per solve; decimated to at most 2^20 points on
  /// long batch x repeat runs so telemetry memory stays bounded.
  support::Sample latencies;
  /// Actual solves executed (requests x rounds) — use this, not
  /// latencies.size(), for counts and throughput.
  std::size_t total_solves = 0;
  CacheStats cache;
  double wall_seconds = 0.0;
};

/// Runs every request of the batch through `registry`: interns each named
/// instance once, then streams all rounds through one Scheduler.
[[nodiscard]] ServiceReport run_service(const BatchSpec& batch,
                                        const SolverRegistry& registry,
                                        const ServiceOptions& options = {});

/// Deterministic per-request output: one line per request, byte-identical
/// across thread counts for a fixed cache configuration.  Failures print
/// `status=error code=<error-code-name> message="..."`; successes print the
/// numeric fields.  Cached and uncached runs agree to ~1e-9 relative (the
/// cached path solves in canonical space and rescales), which 12-digit
/// printing may expose.
void write_results(std::ostream& out, const ServiceReport& report);
[[nodiscard]] std::string format_results(const ServiceReport& report);

/// Human-readable latency/cache telemetry (p50/p99, hit rate, throughput).
[[nodiscard]] std::string format_telemetry(const ServiceReport& report);

}  // namespace malsched::service
