#pragma once

/// \file service.hpp
/// Batch-file front door of the scheduling service.
///
/// Request file format (line-oriented, '#' comments, extending the
/// core/io.hpp instance syntax):
///
///     instance <name>          # opens an inline instance block
///     processors 4             #   ... core/io.hpp lines ...
///     task <volume> <width> <weight>
///     end                      # closes the block
///     solve <solver> <name>    # one request; any number, any order
///
/// `run_service` resolves the requests, fans them over the batch executor
/// and aggregates per-request latency telemetry (p50/p99 via
/// support::Sample).  `write_results` emits the deterministic per-request
/// answer stream (identical for every thread count); telemetry goes through
/// `format_telemetry`, which callers print to stderr or logs.

#include <cstddef>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/service/batch.hpp"
#include "malsched/service/cache.hpp"
#include "malsched/service/solver_registry.hpp"
#include "malsched/support/stats.hpp"

namespace malsched::service {

/// Parsed batch file: named instances plus the request list in file order.
struct BatchSpec {
  std::map<std::string, core::Instance> instances;
  struct Request {
    std::string solver;
    std::string instance_name;
    std::size_t line = 0;  ///< 1-based line of the `solve` statement
  };
  std::vector<Request> requests;
};

/// Parses a batch file; nullopt with `error` filled on failure.
[[nodiscard]] std::optional<BatchSpec> read_batch(std::istream& in,
                                                  std::string* error = nullptr);
[[nodiscard]] std::optional<BatchSpec> parse_batch(const std::string& text,
                                                   std::string* error = nullptr);

struct ServiceOptions {
  unsigned threads = 1;
  /// 0 disables the cache, same as use_cache = false.
  std::size_t cache_capacity = 4096;
  bool use_cache = true;
  /// Rounds over the batch (> 1 exercises the warm cache); results are from
  /// the last round, latencies accumulate across all rounds.
  std::size_t repeat = 1;
};

struct ServiceReport {
  std::vector<SolveResult> results;  ///< request order
  /// Seconds, one point per solve; decimated to at most 2^20 points on
  /// long batch x repeat runs so telemetry memory stays bounded.
  support::Sample latencies;
  /// Actual solves executed (requests x rounds) — use this, not
  /// latencies.size(), for counts and throughput.
  std::size_t total_solves = 0;
  CacheStats cache;
  double wall_seconds = 0.0;
};

/// Runs every request of the batch through `registry`.
[[nodiscard]] ServiceReport run_service(const BatchSpec& batch,
                                        const SolverRegistry& registry,
                                        const ServiceOptions& options = {});

/// Deterministic per-request output: one line per request, byte-identical
/// across thread counts for a fixed cache configuration.  Cached and
/// uncached runs agree to ~1e-9 relative (the cached path solves in
/// canonical space and rescales), which 12-digit printing may expose.
void write_results(std::ostream& out, const ServiceReport& report);
[[nodiscard]] std::string format_results(const ServiceReport& report);

/// Human-readable latency/cache telemetry (p50/p99, hit rate, throughput).
[[nodiscard]] std::string format_telemetry(const ServiceReport& report);

}  // namespace malsched::service
