#pragma once

/// \file canonical.hpp
/// Scale/permutation normal form of MWCT instances, the key-maker of the
/// service result cache.
///
/// MWCT is scale-equivariant along three independent axes:
///   * volumes:    V_i -> c V_i multiplies every completion time by c,
///   * machine:    (P, δ_i) -> (c P, c δ_i) divides completion times by c,
///   * weights:    w_i -> c w_i multiplies the objective by c,
/// and task ids are interchangeable for order-invariant solvers.  The
/// canonical form quotients all four symmetries: P = 1, Σ V_i = 1,
/// Σ w_i = 1, tasks sorted lexicographically by (V, δ, w).  Two requests in
/// the same equivalence class then serialize to the same cache key, so
/// repeated traffic that differs only by units or task numbering re-solves
/// nothing.
///
/// Caveat: the quotient map divides doubles, so instances related by
/// non-power-of-two scales may land on keys differing in the last ulp and
/// miss each other — the cache stays correct (a miss just re-solves), the
/// normal form is a best-effort deduplicator, exact for identical and
/// power-of-two-scaled instances.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"

namespace malsched::service {

/// A canonical instance plus the data to map canonical-space results back.
struct CanonicalForm {
  /// P = 1, Σ V = 1 and Σ w = 1 (when the sums are positive), tasks sorted.
  core::Instance instance;
  /// Canonical task j is original task `permutation[j]`.
  std::vector<std::size_t> permutation;
  /// C_original[permutation[j]] = time_scale * C_canonical[j].
  double time_scale = 1.0;
  /// Σ w C (original) = objective_scale * Σ w C (canonical).
  double objective_scale = 1.0;
  /// Mixing hash of the canonical bit patterns: a fixed-width fingerprint
  /// of the equivalence class (exact dedup uses `canonical_text`; ROADMAP
  /// earmarks this for consistent-hash sharding across worker processes).
  std::uint64_t key = 0;
};

struct CanonicalOptions {
  /// Sort tasks into the permutation normal form.  Disable for solvers whose
  /// semantics depend on task order (e.g. fifo-rigid schedules by id), which
  /// then share only the scale quotient.
  bool permute = true;
};

/// Computes the normal form.  Zero-task instances canonicalize to themselves
/// (with P = 1).
[[nodiscard]] CanonicalForm canonicalize(const core::Instance& instance,
                                         const CanonicalOptions& options = {});

/// Exact serialization of the canonical instance (hex float precision, so
/// distinct canonical forms never collide in the cache map).
[[nodiscard]] std::string canonical_text(const CanonicalForm& form);

/// True when solving the canonical instance is numerically safe: rescaling
/// compresses values toward the solvers' absolute tolerances (~1e-9), so a
/// task whose canonical volume or width lands near them would be silently
/// treated as finished/starved.  Callers (the cache path) must fall back to
/// solving in client space when this is false.
[[nodiscard]] bool well_conditioned(const CanonicalForm& form);

/// Maps canonical-space completion times back to original task ids and
/// original time units.
[[nodiscard]] std::vector<double> denormalize_completions(
    const CanonicalForm& form, std::span<const double> canonical_completions);

}  // namespace malsched::service
