#pragma once

/// \file canonical.hpp
/// Scale/permutation normal form of MWCT instances, the key-maker of the
/// service result cache.
///
/// MWCT is scale-equivariant along three independent axes:
///   * volumes:    V_i -> c V_i multiplies every completion time by c,
///   * machine:    (P, δ_i) -> (c P, c δ_i) divides completion times by c,
///   * weights:    w_i -> c w_i multiplies the objective by c,
/// and task ids are interchangeable for order-invariant solvers.  The
/// canonical form quotients all four symmetries: P = 1, Σ V_i ≈ 1,
/// Σ w_i ≈ 1, tasks sorted lexicographically by (V, δ, w).  Two requests in
/// the same equivalence class then serialize to the same cache key, so
/// repeated traffic that differs only by units or task numbering re-solves
/// nothing.
///
/// Rational quantization: dividing doubles lands instances related by a
/// non-power-of-two scale on ratios that differ in the last few ulps, so a
/// naive quotient map only dedupes identical and power-of-two-scaled
/// traffic.  The normal form therefore snaps every ratio to the
/// minimal-denominator reduced rational p/q inside a ±kQuantizationTol
/// relative window (a Stern–Brocot walk), and rebuilds the canonical task
/// values *from those rationals*.  Any two rescalings of one instance
/// compute ratios within ulps of each other — six orders of magnitude
/// inside the window — so they snap to the same rationals, the same
/// canonical doubles, the same key, and (crucially) the same canonical
/// instance: a hit replays a solve of bit-identical input, so cached and
/// fresh answers are byte-identical through write_results.  Ratios too
/// irrational for a denominator ≤ 2^26 pass through unquantized, which
/// degrades exactly to the old behaviour (a missed dedup just re-solves —
/// the cache stays correct either way).  Quantization perturbs the solved
/// instance by ≤ kQuantizationTol relatively, orders of magnitude below
/// every solver/validator tolerance (~1e-9).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"

namespace malsched::service {

/// Relative half-width of the quantization window around each ratio.
/// Chosen between the ~2e-16 ulp noise that different scalings of one
/// instance produce (must be far above, or twins miss each other) and the
/// ~1e-9 solver tolerances (must be far below, or snapping would change
/// answers observably).
inline constexpr double kQuantizationTol = 1e-12;

/// Snaps `value` to the minimal-denominator reduced rational p/q with
/// p/q ∈ [value·(1−tol), value·(1+tol)], returned as the double (p)/(q).
/// Values whose window admits no denominator ≤ 2^26, and non-finite or
/// non-positive values, are returned unchanged.  Deterministic, and stable
/// under sub-window perturbation: two inputs within each other's windows
/// snap to the same rational (the foundation of the scale-invariant key).
[[nodiscard]] double quantize_ratio(double value,
                                    double tol = kQuantizationTol);

/// A canonical instance plus the data to map canonical-space results back.
struct CanonicalForm {
  /// P = 1; Σ V and Σ w within kQuantizationTol of 1 (when the request sums
  /// are positive); every value a quantized rational; tasks sorted.
  core::Instance instance;
  /// Canonical task j is original task `permutation[j]`.
  std::vector<std::size_t> permutation;
  /// C_original[permutation[j]] = time_scale * C_canonical[j].
  double time_scale = 1.0;
  /// Σ w C (original) = objective_scale * Σ w C (canonical).
  double objective_scale = 1.0;
  /// Mixing hash of the canonical bit patterns: a fixed-width fingerprint
  /// of the equivalence class (exact dedup uses `canonical_text`; the shard
  /// ring hashes this for consistent-hash placement across workers).
  std::uint64_t key = 0;
};

struct CanonicalOptions {
  /// Sort tasks into the permutation normal form.  Disable for solvers whose
  /// semantics depend on task order (e.g. fifo-rigid schedules by id), which
  /// then share only the scale quotient.
  bool permute = true;
  /// Snap ratios to reduced rationals (the scale-invariant key).  Disable to
  /// get the legacy divide-only quotient, which dedupes only identical and
  /// power-of-two-scaled instances — kept for differential benchmarking of
  /// the hit-rate gain, not for production use.
  bool quantize = true;
};

/// Computes the normal form.  Zero-task instances canonicalize to themselves
/// (with P = 1).
[[nodiscard]] CanonicalForm canonicalize(const core::Instance& instance,
                                         const CanonicalOptions& options = {});

/// Exact serialization of the canonical instance (hex float precision, so
/// distinct canonical forms never collide in the cache map).
[[nodiscard]] std::string canonical_text(const CanonicalForm& form);

/// True when solving the canonical instance is numerically safe: rescaling
/// compresses values toward the solvers' absolute tolerances (~1e-9), so a
/// task whose canonical volume or width lands near them would be silently
/// treated as finished/starved.  Callers (the cache path) must fall back to
/// solving in client space when this is false.
[[nodiscard]] bool well_conditioned(const CanonicalForm& form);

/// Maps canonical-space completion times back to original task ids and
/// original time units.
[[nodiscard]] std::vector<double> denormalize_completions(
    const CanonicalForm& form, std::span<const double> canonical_completions);

}  // namespace malsched::service
