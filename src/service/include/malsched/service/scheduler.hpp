#pragma once

/// \file scheduler.hpp
/// The v2 front door of the scheduling service: a handle-based, streaming
/// Scheduler facade.
///
/// Lifecycle:
///
///     auto registry = SolverRegistry::with_default_solvers();
///     Scheduler scheduler(registry, {.threads = 8});
///     InstanceHandle h = intern(std::move(instance));  // once per instance
///     Ticket long_job  = scheduler.submit("optimal", h);
///     Ticket short_job = scheduler.submit("wdeq", h);
///     SolveResult r = short_job.get();   // ready long before long_job
///
/// `intern` canonicalizes the instance once (both quotients, see
/// canonical.hpp) and wraps it in a cheap copyable handle — a shared_ptr
/// plus precomputed cache-key material — so R requests on one instance share
/// one task vector instead of copying it R times.  `submit` enqueues onto a
/// bounded MPMC admission queue and returns a Ticket immediately; worker
/// threads stream jobs off the queue one at a time, so a long `optimal`
/// solve occupies one worker while short `wdeq` requests keep flowing
/// through the others — no whole-batch barrier.
///
/// Backpressure: when the queue is full, `submit` blocks until a worker
/// frees a slot.  After `close()` (or destruction), `submit` returns an
/// already-resolved Ticket carrying ErrorCode::QueueClosed; jobs admitted
/// before the close still run to completion.

#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/service/cache.hpp"
#include "malsched/service/solver_registry.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::service {

class InstanceHandle;

namespace detail {

/// One interned instance: the client-space instance plus lazily built
/// canonical quotients (permuted for order-invariant solvers, scale-only
/// otherwise) and their serialized cache-key texts.  Each quotient is
/// computed at most once, on first use; instances that never meet a cache
/// pay nothing beyond the instance itself.  Defined in scheduler.cpp.
struct Interned;

/// The shared solve core of the v2 service: dispatches `solver` on the
/// interned instance through the canonicalization cache (when eligible),
/// falling back to a client-space solve.  Never throws — solver exceptions
/// become SolverFailure results.  Does not fill latency_seconds.
[[nodiscard]] SolveResult solve_dispatch(const SolverRegistry& registry,
                                         const std::string& solver,
                                         const InstanceHandle& instance,
                                         ResultCache* cache);

}  // namespace detail

/// Canonicalizes and wraps `instance` for cheap sharing across requests.
[[nodiscard]] InstanceHandle intern(core::Instance instance);

/// Cheap copyable reference to an interned instance.  Copying a handle
/// copies a shared_ptr, never the task vector; every submit() holding this
/// handle solves the very same core::Instance object.
class InstanceHandle {
 public:
  InstanceHandle() = default;  ///< invalid until assigned from intern()

  [[nodiscard]] bool valid() const noexcept { return interned_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }

  [[nodiscard]] const core::Instance& instance() const;
  [[nodiscard]] std::size_t size() const { return instance().size(); }

  /// Fixed-width fingerprint of the instance's scale/permutation
  /// equivalence class (CanonicalForm::key, built lazily on first use);
  /// 0 for invalid handles.  Earmarked for consistent-hash sharding across
  /// worker processes.
  [[nodiscard]] std::uint64_t key() const;

  /// Number of live references (handles + in-flight jobs) to the interned
  /// instance; observability aid for tests and telemetry.
  [[nodiscard]] long use_count() const noexcept {
    return interned_.use_count();
  }

 private:
  friend InstanceHandle intern(core::Instance);
  friend SolveResult detail::solve_dispatch(const SolverRegistry&,
                                            const std::string&,
                                            const InstanceHandle&,
                                            ResultCache*);

  explicit InstanceHandle(std::shared_ptr<const detail::Interned> interned)
      : interned_(std::move(interned)) {}

  std::shared_ptr<const detail::Interned> interned_;
};

/// Claim on one submitted request.  Move-only, future-like: `get()` blocks
/// until the worker resolves the job and may be called once.
class Ticket {
 public:
  Ticket() = default;  ///< invalid until assigned from submit()

  [[nodiscard]] bool valid() const noexcept { return future_.valid(); }
  explicit operator bool() const noexcept { return valid(); }

  /// Monotonic per-scheduler admission id (1-based, assigned at enqueue in
  /// FIFO order); 0 for invalid tickets and for submits rejected by a
  /// closed scheduler (they were never admitted).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Non-blocking poll: true once the result is available.  Like get() and
  /// wait(), requires a valid (unconsumed) ticket.
  [[nodiscard]] bool ready() const {
    MALSCHED_EXPECTS_MSG(valid(), "ready() on an invalid Ticket");
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  void wait() const {
    MALSCHED_EXPECTS_MSG(valid(), "wait() on an invalid Ticket");
    future_.wait();
  }

  /// Blocks until resolved and consumes the result (one-shot; the ticket is
  /// invalid afterwards).
  [[nodiscard]] SolveResult get() {
    MALSCHED_EXPECTS_MSG(valid(), "get() on an invalid Ticket");
    return future_.get();
  }

 private:
  friend class Scheduler;

  std::uint64_t id_ = 0;
  std::future<SolveResult> future_;
};

/// Concurrent streaming scheduler over a SolverRegistry.  Thread-safe:
/// submit() from any number of threads.  The registry must outlive the
/// scheduler and must not be mutated while it runs.
class Scheduler {
 public:
  struct Options {
    unsigned threads = 0;  ///< worker count (0 = hardware concurrency)
    /// Admission queue bound; full-queue submits block (backpressure).
    std::size_t queue_capacity = 1024;
    /// Borrowed result cache; overrides the owned one when non-null (the
    /// caller keeps it alive and may share it across schedulers).
    ResultCache* cache = nullptr;
    /// Weight budget of the owned cache (see cache.hpp; ~1 unit per
    /// completion time, so the default bounds it near 8 MB of doubles).
    std::size_t cache_capacity = std::size_t{1} << 20;
    /// False disables memoization entirely, even when `cache` is set.
    bool use_cache = true;
  };

  explicit Scheduler(const SolverRegistry& registry)
      : Scheduler(registry, Options{}) {}
  Scheduler(const SolverRegistry& registry, Options options);

  /// Closes admission, drains the queue and joins the workers.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Convenience forward of the free intern().
  [[nodiscard]] static InstanceHandle intern(core::Instance instance) {
    return service::intern(std::move(instance));
  }

  /// Enqueues one request and returns its claim immediately.  Blocks only
  /// when the admission queue is full.  After close(), returns an
  /// already-resolved QueueClosed failure.  Invalid handles resolve to a
  /// ParseError failure.
  [[nodiscard]] Ticket submit(std::string solver, InstanceHandle instance);

  /// One-shot convenience: interns per call — prefer intern() + the handle
  /// overload for repeated instances.
  [[nodiscard]] Ticket submit(std::string solver, core::Instance instance) {
    return submit(std::move(solver), service::intern(std::move(instance)));
  }

  /// Stops admission (idempotent).  Already-admitted jobs run to
  /// completion; subsequent submits resolve to QueueClosed.
  void close() noexcept;
  [[nodiscard]] bool closed() const noexcept;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] bool cache_enabled() const noexcept {
    return cache_ != nullptr;
  }
  /// Zero-capacity stats when the cache is disabled.
  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] const SolverRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  struct Job {
    std::string solver;
    InstanceHandle instance;
    std::promise<SolveResult> promise;
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_loop();

  const SolverRegistry& registry_;
  std::unique_ptr<ResultCache> owned_cache_;
  ResultCache* cache_ = nullptr;
  std::size_t queue_capacity_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Job> queue_;
  bool closed_ = false;
  std::uint64_t next_ticket_id_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace malsched::service
