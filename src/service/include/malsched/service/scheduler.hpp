#pragma once

/// \file scheduler.hpp
/// The v2 front door of the scheduling service: a handle-based, streaming
/// Scheduler facade with objective-aligned admission.
///
/// Lifecycle:
///
///     auto registry = SolverRegistry::with_default_solvers();
///     Scheduler scheduler(registry, {.threads = 8});
///     InstanceHandle h = intern(std::move(instance));  // once per instance
///     Ticket long_job  = scheduler.submit("optimal", h);
///     Ticket short_job = scheduler.submit("wdeq", h);
///     SolveResult r = short_job.get();   // ready long before long_job
///     long_job.cancel();                 // client went away: abandon it
///
/// `intern` canonicalizes the instance once (both quotients, see
/// canonical.hpp) and wraps it in a cheap copyable handle — a shared_ptr
/// plus precomputed cache-key material — so R requests on one instance share
/// one task vector instead of copying it R times.  `submit` enqueues onto a
/// bounded MPMC admission queue and returns a Ticket immediately; worker
/// threads stream jobs off the queue one at a time, so a long `optimal`
/// solve occupies one worker while short `wdeq` requests keep flowing
/// through the others — no whole-batch barrier.
///
/// Admission order: the queue is a *weighted priority* queue by default,
/// mirroring the paper's Σ w_i C_i objective at the serving layer.  Each
/// request's rank is
///
///     admitted_at  +  aging_factor · estimated_seconds / priority_weight
///
/// (seconds since the scheduler started) — weighted-shortest-estimated-work
/// ordering, where the estimate comes from the solver's registered cost
/// hint and n.  Cheap/urgent work overtakes a backlog of heavy solves,
/// which is what minimizes weighted mean response time when the queue backs
/// up; the admitted_at term is the anti-starvation aging: a heavy request
/// is overtaken by fresh arrivals for at most aging_factor ·
/// estimated_seconds / priority_weight seconds before its rank is the
/// minimum, so nothing waits forever.  Ranks are fixed at admission, so the
/// queue is an ordinary ordered multimap — no re-heapify over time.
/// Options::admission = Admission::Fifo restores the strict v2 FIFO order
/// (every rank 0, ties broken by admission id).
///
/// Cancellation and deadlines: `submit` takes SubmitOptions{priority_weight,
/// deadline}; `Ticket::cancel()` removes still-queued work immediately
/// (resolving the ticket with ErrorCode::Cancelled and freeing its queue
/// slot — no worker ever touches it) or, once a worker picked the job up,
/// sets a cooperative flag that cancellation-aware solvers (the `optimal`
/// branch-and-bound/enumeration loops) poll at node boundaries.  A deadline
/// that passes while the job is still queued resolves it as
/// ErrorCode::DeadlineExceeded when a worker pops it, again without
/// solving; during a solve the deadline rides the same cooperative token.
/// Solvers without cancellation support simply run to completion and their
/// result is delivered as usual — cancellation is best-effort by design.
///
/// Backpressure: when the queue is full, `submit` blocks until a worker
/// frees a slot.  After `close()` (or destruction), `submit` returns an
/// already-resolved Ticket carrying ErrorCode::QueueClosed; jobs admitted
/// before the close still run to completion.
///
/// Determinism note: admission order changes *latency*, never *results* —
/// each result still depends only on its own (solver, instance) pair, so
/// the batch determinism contract (identical result bytes for any thread
/// count) is unchanged.  Deadlines are the exception: whether a request
/// beats its deadline is wall-clock dependent by definition.

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/service/cache.hpp"
#include "malsched/service/solver_registry.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::service {

class InstanceHandle;

namespace detail {

/// One interned instance: the client-space instance plus lazily built
/// canonical quotients (permuted for order-invariant solvers, scale-only
/// otherwise) and their serialized cache-key texts.  Each quotient is
/// computed at most once, on first use; instances that never meet a cache
/// pay nothing beyond the instance itself.  Defined in scheduler.cpp.
struct Interned;

/// Shared queue core (mutex, admission multimap, close flag) co-owned by
/// the Scheduler and every outstanding Ticket, so Ticket::cancel() stays
/// safe even after the Scheduler itself is gone.  Defined in scheduler.cpp.
struct SchedulerShared;

/// Per-ticket shared state: promise, cancellation source, deadline and the
/// queued/running/done stage.  Defined in scheduler.cpp.
struct TicketShared;

/// The shared solve core of the v2 service: dispatches `solver` on the
/// interned instance through the canonicalization cache (when eligible),
/// falling back to a client-space solve.  Never throws — solver exceptions
/// become SolverFailure results.  Does not fill latency_seconds.  The
/// context's cancellation token reaches solvers registered context-aware;
/// when it aborts a cache-path solve the failure is returned as-is (no
/// client-space re-solve, and failures are never cached).
[[nodiscard]] SolveResult solve_dispatch(const SolverRegistry& registry,
                                         const std::string& solver,
                                         const InstanceHandle& instance,
                                         ResultCache* cache,
                                         const SolveContext& context = {});

}  // namespace detail

/// Canonicalizes and wraps `instance` for cheap sharing across requests.
[[nodiscard]] InstanceHandle intern(core::Instance instance);

/// Cheap copyable reference to an interned instance.  Copying a handle
/// copies a shared_ptr, never the task vector; every submit() holding this
/// handle solves the very same core::Instance object.
class InstanceHandle {
 public:
  InstanceHandle() = default;  ///< invalid until assigned from intern()

  [[nodiscard]] bool valid() const noexcept { return interned_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }

  [[nodiscard]] const core::Instance& instance() const;
  [[nodiscard]] std::size_t size() const { return instance().size(); }

  /// Fixed-width fingerprint of the instance's scale/permutation
  /// equivalence class (CanonicalForm::key, built lazily on first use);
  /// 0 for invalid handles.  Earmarked for consistent-hash sharding across
  /// worker processes.
  [[nodiscard]] std::uint64_t key() const;

  /// Number of live references (handles + in-flight jobs) to the interned
  /// instance; observability aid for tests and telemetry.
  [[nodiscard]] long use_count() const noexcept {
    return interned_.use_count();
  }

 private:
  friend InstanceHandle intern(core::Instance);
  friend SolveResult detail::solve_dispatch(const SolverRegistry&,
                                            const std::string&,
                                            const InstanceHandle&,
                                            ResultCache*,
                                            const SolveContext&);

  explicit InstanceHandle(std::shared_ptr<const detail::Interned> interned)
      : interned_(std::move(interned)) {}

  std::shared_ptr<const detail::Interned> interned_;
};

/// Per-submit request options: how urgent the request is relative to its
/// queue peers, and how long the client is willing to wait at all.
struct SubmitOptions {
  /// Relative urgency under priority admission (the serving-layer analogue
  /// of the paper's task weight w_i): a request's queue rank divides its
  /// estimated work by this.  Must be positive; non-finite or non-positive
  /// values are clamped to 1.  Ignored under Admission::Fifo.
  double priority_weight = 1.0;
  /// Absolute latest useful completion time.  Expired-while-queued requests
  /// resolve as DeadlineExceeded without consuming a solve; during a solve
  /// the deadline rides the cooperative cancellation token, so only
  /// cancellation-aware solvers abort mid-flight (others deliver their
  /// result late — completed work is never discarded).
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Claim on one submitted request.  Move-only, future-like: `get()` blocks
/// until the worker resolves the job and may be called once.
class Ticket {
 public:
  Ticket() = default;  ///< invalid until assigned from submit()

  [[nodiscard]] bool valid() const noexcept { return future_.valid(); }
  explicit operator bool() const noexcept { return valid(); }

  /// Monotonic per-scheduler admission id (1-based, assigned at enqueue in
  /// FIFO order); 0 for invalid tickets and for submits rejected by a
  /// closed scheduler (they were never admitted).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Non-blocking poll: true once the result is available.  Like get() and
  /// wait(), requires a valid (unconsumed) ticket.
  [[nodiscard]] bool ready() const {
    MALSCHED_EXPECTS_MSG(valid(), "ready() on an invalid Ticket");
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  void wait() const {
    MALSCHED_EXPECTS_MSG(valid(), "wait() on an invalid Ticket");
    future_.wait();
  }

  /// Blocks until resolved and consumes the result (one-shot; the ticket is
  /// invalid afterwards).
  [[nodiscard]] SolveResult get() {
    MALSCHED_EXPECTS_MSG(valid(), "get() on an invalid Ticket");
    return future_.get();
  }

  /// Abandons the request.  Still-queued work is removed immediately: the
  /// ticket resolves with ErrorCode::Cancelled, its queue slot frees, and
  /// no worker ever solves it.  Work already on a worker gets the
  /// cooperative cancellation flag; cancellation-aware solvers (see the
  /// registry's `cancellable` flag) abort at their next node boundary and
  /// the ticket resolves Cancelled, while unaware solvers run to completion
  /// and deliver normally.  Returns true when the cancel removed queued
  /// work or delivered the flag to a running job; false when the result was
  /// already resolved (or the ticket never entered the queue).  Safe to
  /// call from any thread, concurrently with get()/wait(), and after the
  /// Scheduler is destroyed; idempotent.
  bool cancel() noexcept;

 private:
  friend class Scheduler;

  std::uint64_t id_ = 0;
  std::future<SolveResult> future_;
  std::shared_ptr<detail::TicketShared> shared_;  ///< null: never admitted
};

/// Concurrent streaming scheduler over a SolverRegistry.  Thread-safe:
/// submit() from any number of threads.  The registry must outlive the
/// scheduler and must not be mutated while it runs.
class Scheduler {
 public:
  /// Admission queue discipline (see the file comment for the rank
  /// formula).
  enum class Admission {
    Fifo,              ///< strict arrival order (the v2 behaviour)
    WeightedPriority,  ///< weighted-shortest-estimated-work with aging
  };

  struct Options {
    unsigned threads = 0;  ///< worker count (0 = hardware concurrency)
    /// Admission queue bound; full-queue submits block (backpressure).
    std::size_t queue_capacity = 1024;
    /// Borrowed result cache; overrides the owned one when non-null (the
    /// caller keeps it alive and may share it across schedulers).
    ResultCache* cache = nullptr;
    /// Weight budget of the owned cache (see cache.hpp; ~1 unit per
    /// completion time, so the default bounds it near 8 MB of doubles).
    std::size_t cache_capacity = std::size_t{1} << 20;
    /// Optional TTL of the owned cache, in seconds: entries older than this
    /// stop serving hits and are evicted lazily at lookup (cache.hpp).
    /// Ignored for a borrowed `cache` — its owner configured it.
    std::optional<double> cache_ttl_seconds;
    /// TinyLFU admission on the owned cache (cache.hpp): when the cache is
    /// full, a first-seen key must out-score the LRU victims it would evict
    /// on estimated popularity, so one-off instances cannot flush recurring
    /// ones.  Ignored for a borrowed `cache` — its owner configured it.
    bool cache_admission = true;
    /// False disables memoization entirely, even when `cache` is set.
    bool use_cache = true;
    /// Queue discipline; WeightedPriority mirrors the paper's objective at
    /// the admission layer.
    Admission admission = Admission::WeightedPriority;
    /// Anti-starvation knob of the priority rank: a request may be
    /// overtaken by fresh arrivals for at most aging_factor ·
    /// estimated_seconds / priority_weight seconds of queue time.  Lower is
    /// closer to pure weighted-shortest-work (more reordering), 0 degrades
    /// to arrival-time order.  Must be >= 0 and finite.
    double aging_factor = 16.0;
  };

  explicit Scheduler(const SolverRegistry& registry)
      : Scheduler(registry, Options{}) {}
  Scheduler(const SolverRegistry& registry, Options options);

  /// Closes admission, drains the queue and joins the workers.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Convenience forward of the free intern().
  [[nodiscard]] static InstanceHandle intern(core::Instance instance) {
    return service::intern(std::move(instance));
  }

  /// Enqueues one request and returns its claim immediately.  Blocks only
  /// when the admission queue is full.  After close(), returns an
  /// already-resolved QueueClosed failure.  Invalid handles resolve to a
  /// ParseError failure.
  [[nodiscard]] Ticket submit(std::string solver, InstanceHandle instance,
                              const SubmitOptions& options = {});

  /// One-shot convenience: interns per call — prefer intern() + the handle
  /// overload for repeated instances.
  [[nodiscard]] Ticket submit(std::string solver, core::Instance instance,
                              const SubmitOptions& options = {}) {
    return submit(std::move(solver), service::intern(std::move(instance)),
                  options);
  }

  /// Stops admission (idempotent).  Already-admitted jobs run to
  /// completion; subsequent submits resolve to QueueClosed.
  void close() noexcept;
  [[nodiscard]] bool closed() const noexcept;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] bool cache_enabled() const noexcept {
    return cache_ != nullptr;
  }
  /// Zero-capacity stats when the cache is disabled.
  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] const SolverRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  void worker_loop();

  const SolverRegistry& registry_;
  std::unique_ptr<ResultCache> owned_cache_;
  ResultCache* cache_ = nullptr;
  std::size_t queue_capacity_;
  Admission admission_;
  double aging_factor_;

  /// Queue guts, co-owned by outstanding Tickets (see SchedulerShared).
  std::shared_ptr<detail::SchedulerShared> shared_;

  std::vector<std::thread> workers_;
};

}  // namespace malsched::service
