#pragma once

/// \file tinylfu.hpp
/// TinyLFU admission filter: an approximate frequency history that decides
/// whether a cache candidate is worth the victim it would displace.
///
/// Plain LRU admits every insert, so a burst of one-off keys can flush the
/// working set.  TinyLFU keeps a compact popularity sketch over the *request
/// stream* (hits and misses alike) and lets an over-budget insert proceed
/// only if the new key has been seen at least as often as the entry it
/// evicts — recurring canonical instances stay resident while single-shot
/// traffic bounces off.
///
/// Two structures back the estimate (Einziger et al., "TinyLFU: A Highly
/// Efficient Cache Admission Policy"):
///   * a *doorkeeper* bloom filter absorbing the first occurrence of each
///     key, so the sketch spends its counters on keys seen twice or more
///     (the vast majority of a skewed stream is singletons);
///   * a 4-row count-min sketch of 4-bit saturating counters holding the
///     repeat counts, read with the min rule (over-estimates only).
/// After `sample_size` recorded events every counter is halved and the
/// doorkeeper cleared, exponentially decaying stale popularity so yesterday's
/// hot keys cannot squat forever (the "reset" operation of the paper).
///
/// The filter is sized in counters, not keys, and never stores keys — a few
/// KiB covers hundreds of thousands of distinct instances.  Not internally
/// synchronized: callers (the cache shard) serialize access under their own
/// lock.

#include <cstdint>
#include <vector>

namespace malsched::service {

struct TinyLfuOptions {
  /// Counters per sketch row, rounded up to a power of two (so row indexing
  /// is a mask).  Rule of thumb: within ~4x of the number of distinct hot
  /// keys the cache should protect.
  std::size_t counters = std::size_t{1} << 12;
  /// Events between halvings; 0 picks 16x `counters` (with 4-bit counters a
  /// uniform stream cannot saturate the sketch between resets).
  std::size_t sample_size = 0;
};

class TinyLfu {
 public:
  explicit TinyLfu(const TinyLfuOptions& options = {});

  /// Records one occurrence of the key (callers pre-hash: any 64-bit hash
  /// with good mixing, e.g. std::hash of the cache key).  First occurrence
  /// since the last reset lands in the doorkeeper; repeats increment the
  /// sketch conservatively (only the minimal rows grow, tightening the
  /// count-min over-estimate).  Triggers a halving when the sample window
  /// fills.
  void record(std::uint64_t key_hash);

  /// Approximate occurrences of the key in the current sample window:
  /// sketch minimum plus the doorkeeper bit.  Never under-estimates within
  /// a window; saturates at kMaxEstimate.
  [[nodiscard]] std::uint32_t estimate(std::uint64_t key_hash) const;

  /// The admission decision: would the candidate serve more future traffic
  /// than the victim it displaces?  Ties admit, favoring fresh keys — the
  /// filter only blocks inserts whose victim is *strictly* more popular, so
  /// a cold cache or an unskewed stream behaves like plain LRU.
  [[nodiscard]] bool admit(std::uint64_t candidate_hash,
                           std::uint64_t victim_hash) const {
    return estimate(candidate_hash) >= estimate(victim_hash);
  }

  /// Events recorded since the last halving (the sample-window fill level).
  [[nodiscard]] std::size_t sampled() const noexcept { return sampled_; }
  /// Halvings performed since construction.
  [[nodiscard]] std::uint64_t resets() const noexcept { return resets_; }
  [[nodiscard]] std::size_t counters_per_row() const noexcept { return mask_ + 1; }
  [[nodiscard]] std::size_t sample_size() const noexcept {
    return sample_size_;
  }

  static constexpr std::uint32_t kRows = 4;
  static constexpr std::uint32_t kCounterMax = 15;  ///< 4-bit saturation
  static constexpr std::uint32_t kMaxEstimate = kCounterMax + 1;  ///< + doorkeeper

 private:
  [[nodiscard]] std::size_t slot(std::uint64_t key_hash,
                                 std::uint32_t row) const;
  void halve();

  std::size_t mask_;          ///< counters_per_row - 1 (power of two - 1)
  std::size_t sample_size_;
  std::size_t sampled_ = 0;
  std::uint64_t resets_ = 0;
  std::vector<std::uint8_t> rows_;        ///< kRows x (mask_ + 1) counters
  std::vector<std::uint64_t> doorkeeper_;  ///< bloom bits, kRows probes
};

}  // namespace malsched::service
