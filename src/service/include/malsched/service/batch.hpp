#pragma once

/// \file batch.hpp
/// Concurrent batch executor: fans a vector of solve requests across a
/// support::ThreadPool and returns the results in request order.
///
/// Determinism contract: results[i] depends only on requests[i] (solvers are
/// deterministic, the cache stores exactly what a solve would produce), so
/// the output is identical for any thread count — the bench asserts this
/// byte-for-byte.

#include <span>
#include <vector>

#include "malsched/service/cache.hpp"
#include "malsched/service/solver_registry.hpp"
#include "malsched/support/thread_pool.hpp"

namespace malsched::service {

struct BatchOptions {
  /// Workers for the internal pool when `pool` is null (0 = hardware).
  unsigned threads = 1;
  /// Run on an existing pool instead of creating one.
  support::ThreadPool* pool = nullptr;
  /// Optional canonicalization cache; null disables memoization.
  ResultCache* cache = nullptr;
};

/// Solves one request through the cache (when provided): canonicalize, look
/// up, solve-and-fill on miss, denormalize back to the request's task ids
/// and units.  Failed solves are never cached.
[[nodiscard]] SolveResult solve_cached(const SolverRegistry& registry,
                                       const SolveRequest& request,
                                       ResultCache* cache);

/// Solves every request, in parallel, preserving request order in the
/// returned vector.  Per-request wall latency lands in
/// SolveResult::latency_seconds.
[[nodiscard]] std::vector<SolveResult> solve_batch(
    const SolverRegistry& registry, std::span<const SolveRequest> requests,
    const BatchOptions& options = {});

}  // namespace malsched::service
