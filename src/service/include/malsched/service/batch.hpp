#pragma once

/// \file batch.hpp
/// Batch conveniences over the streaming Scheduler (scheduler.hpp): solve a
/// whole vector of requests and get the results back in request order.
///
/// These are thin adapters — every request flows through the same
/// intern/submit/ticket core as the v2 API, so a batch is just a stream
/// whose tickets are collected in order.  Determinism contract: results[i]
/// depends only on requests[i] (solvers are deterministic, the cache stores
/// exactly what a solve would produce), so the output is identical for any
/// thread count — the bench asserts this byte-for-byte.

#include <span>
#include <string>
#include <vector>

#include "malsched/service/cache.hpp"
#include "malsched/service/scheduler.hpp"
#include "malsched/service/solver_registry.hpp"

namespace malsched::service {

/// One batched request: a solver name plus an interned instance handle.
/// Handles are cheap to copy — R requests on one instance share one task
/// vector (use intern() once, then reuse the handle).
struct BatchRequest {
  std::string solver;
  InstanceHandle instance;
};

struct BatchOptions {
  /// Scheduler workers (0 = hardware concurrency).
  unsigned threads = 1;
  /// Optional canonicalization cache; null disables memoization.  Borrowed:
  /// the caller keeps it alive and may share it across batches to stay warm.
  ResultCache* cache = nullptr;
  /// Admission queue bound of the underlying Scheduler.
  std::size_t queue_capacity = 1024;
};

/// Solves one request through the cache (when provided): canonicalize, look
/// up, solve-and-fill on miss, denormalize back to the request's task ids
/// and units.  Failed solves are never cached.  latency_seconds is the
/// solve wall time (no queueing is involved).
[[nodiscard]] SolveResult solve_cached(const SolverRegistry& registry,
                                       const std::string& solver,
                                       const InstanceHandle& instance,
                                       ResultCache* cache);

/// Solves every request via a Scheduler, preserving request order in the
/// returned vector.  Per-request submit-to-completion latency (queueing
/// included) lands in SolveResult::latency_seconds.
[[nodiscard]] std::vector<SolveResult> solve_batch(
    const SolverRegistry& registry, std::span<const BatchRequest> requests,
    const BatchOptions& options = {});

/// Same, over a caller-owned Scheduler — reuses its workers, queue and
/// cache across batches instead of spinning threads up per call (the hot
/// path for repeated batches and the benchmarks).
[[nodiscard]] std::vector<SolveResult> solve_batch(
    Scheduler& scheduler, std::span<const BatchRequest> requests);

}  // namespace malsched::service
