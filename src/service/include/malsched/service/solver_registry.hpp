#pragma once

/// \file solver_registry.hpp
/// The uniform SolveRequest -> SolveResult surface of the scheduling
/// service.  Every algorithm in the library — the fluid-engine policies
/// (sim::all_policies), clairvoyant greedy search, water-filling
/// normalization, the Corollary-1 order LP and the enumeration optimum — is
/// exposed under a stable string name so front-ends dispatch without
/// compile-time knowledge of the zoo.
///
/// Registered solvers must be deterministic (same instance -> bitwise same
/// result) and safe to invoke concurrently from many threads; the batch
/// executor and the canonicalization cache both rely on it.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"

namespace malsched::service {

/// One scheduling request: which solver to run on which instance.
struct SolveRequest {
  std::string solver;
  core::Instance instance;
};

/// Uniform result.  `ok == false` means the request failed (unknown solver,
/// size guard, solver error) with the reason in `error`; numeric fields are
/// meaningless then.
struct SolveResult {
  bool ok = false;
  std::string error;
  std::string solver;
  double objective = 0.0;            ///< Σ w_i C_i
  double makespan = 0.0;
  std::vector<double> completions;   ///< indexed by original task id
  bool cache_hit = false;            ///< set by the caching batch executor
  double latency_seconds = 0.0;      ///< set by the batch executor
};

/// Name -> solver dispatch table.  Build it once (registration is not
/// thread-safe), then `solve` freely from any number of threads.
///
/// Cache contract: the canonicalization cache (batch.hpp) solves a rescaled
/// instance (P = 1, Σ V = 1, Σ w = 1) and maps the result back, so a
/// *cacheable* solver must be scale-equivariant — completion times scale
/// linearly under volume/machine scaling and are weight-scale independent.
/// Every algorithm in this library is; register a solver that is not (e.g.
/// one with absolute thresholds) with `cacheable = false` and it will
/// always be solved in client space.
class SolverRegistry {
 public:
  using SolverFn = std::function<SolveResult(const core::Instance&)>;

  struct SolverInfo {
    SolverFn fn;
    /// True when the solver's output is independent of task numbering
    /// *including tie-breaking*; the cache then also quotients permutations
    /// (see canonical.hpp).  Defaults to false — the safe choice: id-based
    /// tie-breaks are easy to overlook and would silently flip cached
    /// results for permuted instances.
    bool order_invariant = false;
    std::string description;
    /// False exempts the solver from the canonicalization cache entirely
    /// (for solvers that are not scale-equivariant, see class comment).
    bool cacheable = true;
  };

  /// Registers (or replaces) a solver under `name`.
  void register_solver(std::string name, SolverFn fn,
                       bool order_invariant = false,
                       std::string description = "", bool cacheable = true);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const SolverInfo* find(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept { return solvers_.size(); }

  /// Dispatches the request.  Unknown solvers yield ok = false; zero-task
  /// instances short-circuit to an empty success for every solver.
  [[nodiscard]] SolveResult solve(const SolveRequest& request) const;

  /// The full built-in zoo: every sim policy under its policy name, plus
  /// "greedy-heuristic", "water-fill-smith", "order-lp-smith" and "optimal".
  [[nodiscard]] static SolverRegistry with_default_solvers();

 private:
  std::map<std::string, SolverInfo> solvers_;
};

}  // namespace malsched::service
