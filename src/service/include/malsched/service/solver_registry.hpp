#pragma once

/// \file solver_registry.hpp
/// The uniform (solver, instance) -> SolveResult surface of the scheduling
/// service.  Every algorithm in the library — the fluid-engine policies
/// (sim::all_policies), clairvoyant greedy search, water-filling
/// normalization, the Corollary-1 order LP and the enumeration optimum — is
/// exposed under a stable string name so front-ends dispatch without
/// compile-time knowledge of the zoo.
///
/// Failures are typed: a SolveResult carries either a SolveOutput or a
/// SolveError{code, detail}, never a bare string.  The codes are a closed
/// enum so clients can branch on the failure class (retry on QueueClosed,
/// reject on SizeGuard, ...) without parsing messages.
///
/// Registered solvers must be deterministic (same instance -> bitwise same
/// result) and safe to invoke concurrently from many threads; the Scheduler,
/// the batch executor and the canonicalization cache all rely on it.

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "malsched/core/cancel.hpp"
#include "malsched/core/instance.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::service {

/// Closed set of failure classes the service can report.  When adding a
/// code, extend kAllErrorCodes below and the error_code_name switch (the
/// compiler's -Wswitch flags the latter; parse_error_code and the
/// round-trip tests iterate kAllErrorCodes, so they follow automatically).
enum class ErrorCode {
  UnknownSolver,     ///< no solver registered under the requested name
  SizeGuard,         ///< instance exceeds a solver's complexity guard
  ParseError,        ///< request references an unknown/unparseable instance
  SolverFailure,     ///< the solver rejected the input, failed or threw
  QueueClosed,       ///< submitted after Scheduler::close()
  Cancelled,         ///< the client abandoned the request (Ticket::cancel())
  DeadlineExceeded,  ///< SubmitOptions::deadline passed before completion
  ProtocolMismatch,  ///< a fleet peer failed the versioned wire handshake
};

/// Every ErrorCode, the single enumeration the parser and tests iterate.
inline constexpr ErrorCode kAllErrorCodes[] = {
    ErrorCode::UnknownSolver,    ErrorCode::SizeGuard,
    ErrorCode::ParseError,       ErrorCode::SolverFailure,
    ErrorCode::QueueClosed,      ErrorCode::Cancelled,
    ErrorCode::DeadlineExceeded, ErrorCode::ProtocolMismatch};

/// Stable kebab-case name of a code ("unknown-solver", ...), the form
/// `write_results` emits.
[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

/// Inverse of error_code_name; nullopt for unrecognized text.
[[nodiscard]] std::optional<ErrorCode> parse_error_code(
    std::string_view name) noexcept;

/// Escapes free text (quotes, backslashes, newlines) for embedding in the
/// one-line-per-request result stream (`message="..."`).  The human output
/// of write_results and the shard wire protocol are deliberately one
/// dialect, so both must share this single implementation — diverging
/// escape rules would break the byte-identical sharded-output contract.
[[nodiscard]] std::string escape_result_text(const std::string& text);
/// Inverse of escape_result_text.
[[nodiscard]] std::string unescape_result_text(const std::string& text);

/// Typed failure: a class plus a human-readable detail message.
struct SolveError {
  ErrorCode code = ErrorCode::SolverFailure;
  std::string detail;

  /// "code-name: detail" for logs and diagnostics.
  [[nodiscard]] std::string to_string() const;
};

/// Successful solve payload.
struct SolveOutput {
  double objective = 0.0;            ///< Σ w_i C_i
  double makespan = 0.0;
  std::vector<double> completions;   ///< indexed by original task id
};

/// Uniform result: either a SolveOutput or a SolveError, plus per-request
/// metadata.  Expected-style accessors — `ok()` selects which side is live;
/// `output()`/`error()` assert on the wrong side.
class SolveResult {
 public:
  /// Default-constructed results are an empty SolverFailure (so containers
  /// of pending results are failures until filled in).
  SolveResult() : outcome_(SolveError{}) {}

  [[nodiscard]] static SolveResult success(std::string solver,
                                           SolveOutput output) {
    SolveResult result;
    result.solver = std::move(solver);
    result.outcome_ = std::move(output);
    return result;
  }
  [[nodiscard]] static SolveResult failure(std::string solver,
                                           SolveError error) {
    SolveResult result;
    result.solver = std::move(solver);
    result.outcome_ = std::move(error);
    return result;
  }
  [[nodiscard]] static SolveResult failure(std::string solver, ErrorCode code,
                                           std::string detail) {
    return failure(std::move(solver), SolveError{code, std::move(detail)});
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<SolveOutput>(outcome_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const SolveOutput& output() const {
    MALSCHED_EXPECTS_MSG(ok(), "output() on a failed SolveResult");
    return std::get<SolveOutput>(outcome_);
  }
  [[nodiscard]] SolveOutput& output() {
    MALSCHED_EXPECTS_MSG(ok(), "output() on a failed SolveResult");
    return std::get<SolveOutput>(outcome_);
  }
  [[nodiscard]] const SolveError& error() const {
    MALSCHED_EXPECTS_MSG(!ok(), "error() on a successful SolveResult");
    return std::get<SolveError>(outcome_);
  }

  /// Success-side conveniences (assert ok(), like output()).
  [[nodiscard]] double objective() const { return output().objective; }
  [[nodiscard]] double makespan() const { return output().makespan; }
  [[nodiscard]] const std::vector<double>& completions() const {
    return output().completions;
  }

  std::string solver;
  bool cache_hit = false;        ///< set by the caching solve path
  double latency_seconds = 0.0;  ///< submit-to-completion, including any
                                 ///< backpressure wait (Scheduler), or solve
                                 ///< wall time (solve_cached)

 private:
  std::variant<SolveError, SolveOutput> outcome_;
};

/// Per-request execution context passed down to solvers that opt in (the
/// ContextSolverFn registration form).  Carries the cooperative cancellation
/// token the Scheduler builds from Ticket::cancel() and the request's
/// deadline; solvers poll it at their own node boundaries.  Plain SolverFn
/// registrations never see it — they run to completion regardless.
struct SolveContext {
  core::CancelToken cancel;
};

/// Name -> solver dispatch table.  Build it once (registration is not
/// thread-safe), then `solve` freely from any number of threads.
///
/// Cache contract: the canonicalization cache solves a rescaled instance
/// (P = 1, Σ V = 1, Σ w = 1) and maps the result back, so a *cacheable*
/// solver must be scale-equivariant — completion times scale linearly under
/// volume/machine scaling and are weight-scale independent.  Every algorithm
/// in this library is; register a solver that is not (e.g. one with absolute
/// thresholds) with `cacheable = false` and it will always be solved in
/// client space.
class SolverRegistry {
 public:
  using SolverFn = std::function<SolveResult(const core::Instance&)>;
  using ContextSolverFn =
      std::function<SolveResult(const core::Instance&, const SolveContext&)>;
  /// Estimated solve wall time in seconds for an n-task instance.  Coarse
  /// by design: the priority admission queue only needs the relative
  /// magnitudes right (exponential ≫ LP ≫ fluid policy) to order work.
  using CostHintFn = std::function<double(std::size_t)>;

  struct SolverInfo {
    ContextSolverFn fn;
    /// True when the solver's output is independent of task numbering
    /// *including tie-breaking*; the cache then also quotients permutations
    /// (see canonical.hpp).  Defaults to false — the safe choice: id-based
    /// tie-breaks are easy to overlook and would silently flip cached
    /// results for permuted instances.
    bool order_invariant = false;
    std::string description;
    /// False exempts the solver from the canonicalization cache entirely
    /// (for solvers that are not scale-equivariant, see class comment).
    bool cacheable = true;
    /// True when the solver polls SolveContext::cancel and aborts early
    /// (returning a Cancelled failure).  Polynomial-time solvers finish in
    /// microseconds-to-milliseconds and simply run to completion.
    bool cancellable = false;
    /// Estimated solve seconds given n; null falls back to the scheduler's
    /// default estimate.  Feeds the weighted-shortest-estimated-work
    /// admission order (scheduler.hpp).
    CostHintFn cost_hint;
  };

  /// Registers (or replaces) a solver under `name`.
  void register_solver(std::string name, SolverFn fn,
                       bool order_invariant = false,
                       std::string description = "", bool cacheable = true);
  /// Full-control registration (context-aware solvers, cost hints, the
  /// cancellable flag).
  void register_solver(std::string name, SolverInfo info);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const SolverInfo* find(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept { return solvers_.size(); }

  /// Dispatches `solver` on `instance`.  Unknown solvers yield an
  /// UnknownSolver error; zero-task instances short-circuit to an empty
  /// success for every solver.
  [[nodiscard]] SolveResult solve(const std::string& solver,
                                  const core::Instance& instance) const {
    return solve(solver, instance, SolveContext{});
  }
  /// Same, threading a cancellation/deadline context into solvers that
  /// registered context-aware (the `cancellable` column).
  [[nodiscard]] SolveResult solve(const std::string& solver,
                                  const core::Instance& instance,
                                  const SolveContext& context) const;

  /// Estimated solve seconds for `solver` on an n-task instance: the
  /// registered cost hint when present, else a flat polynomial default.
  /// Unknown solvers get the default too — they fail fast at dispatch.
  [[nodiscard]] double estimated_seconds(const std::string& solver,
                                         std::size_t n) const;

  /// The full built-in zoo: every sim policy under its policy name, plus
  /// "greedy-heuristic", "water-fill-smith", "order-lp-smith" and "optimal".
  [[nodiscard]] static SolverRegistry with_default_solvers();

 private:
  std::map<std::string, SolverInfo> solvers_;
};

}  // namespace malsched::service
