#include "malsched/service/cache.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "malsched/support/contracts.hpp"

namespace malsched::service {

ResultCache::ResultCache(const CacheOptions& options)
    : shards_(options.shards == 0 ? 1 : options.shards),
      per_shard_capacity_((options.capacity + shards_.size() - 1) /
                          shards_.size()),
      capacity_(options.capacity),
      admission_(options.admission) {
  MALSCHED_EXPECTS_MSG(options.capacity > 0,
                       "cache capacity must be positive");
  if (admission_) {
    for (Shard& shard : shards_) {
      shard.lfu = std::make_unique<TinyLfu>(options.admission_sketch);
    }
  }
  if (options.ttl) {
    MALSCHED_EXPECTS_MSG(options.ttl->count() >= 0.0,
                         "cache ttl must be non-negative");
    // Clamp before the cast: a huge TTL ("effectively never expire") must
    // not overflow the integer tick count into a negative duration that
    // would expire everything instantly.  Half of the representable range
    // also keeps `now + ttl` in put() overflow-free.
    const double max_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::duration::max())
            .count() /
        2.0;
    ttl_ = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(
            std::min(options.ttl->count(), max_seconds)));
  }
}

ResultCache::Shard& ResultCache::shard_for(std::size_t key_hash) {
  return shards_[key_hash % shards_.size()];
}

std::shared_ptr<const CachedSolve> ResultCache::get(const std::string& key) {
  const std::size_t key_hash = std::hash<std::string>{}(key);
  Shard& shard = shard_for(key_hash);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.lfu) {
    // Every lookup is a popularity vote, hit or miss: the admission contest
    // compares demand for keys, not residency.
    shard.lfu->record(key_hash);
  }
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (ttl_ && std::chrono::steady_clock::now() >= it->second->expires) {
    // Lazy TTL eviction: the lookup that finds a stale entry reclaims it
    // and reports a miss, so the caller re-solves and re-fills.
    shard.weight -= it->second->weight;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    expired_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ResultCache::put(const std::string& key, CachedSolve value) {
  const std::size_t weight = entry_weight(value);
  auto shared = std::make_shared<const CachedSolve>(std::move(value));
  const auto expires = ttl_ ? std::chrono::steady_clock::now() + *ttl_
                            : std::chrono::steady_clock::time_point{};
  const std::size_t key_hash = std::hash<std::string>{}(key);
  Shard& shard = shard_for(key_hash);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.weight -= it->second->weight;
    it->second->value = std::move(shared);
    it->second->weight = weight;
    it->second->expires = expires;
    shard.weight += weight;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    if (shard.lfu) {
      // The insert itself is an occurrence of the key (a rejected key thus
      // gains ground on every re-arrival and is eventually admitted).
      shard.lfu->record(key_hash);
      // Admission contest: an over-budget insert must out-score, or tie,
      // every LRU victim it displaces.  Losing drops the insert — the
      // shard's resident set was judged more valuable than the newcomer.
      while (shard.weight + weight > per_shard_capacity_ &&
             !shard.lru.empty()) {
        const std::size_t victim_hash =
            std::hash<std::string>{}(shard.lru.back().key);
        if (!shard.lfu->admit(key_hash, victim_hash)) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        shard.weight -= shard.lru.back().weight;
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      admitted_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(Entry{key, std::move(shared), weight, expires});
    shard.index.emplace(key, shard.lru.begin());
    shard.weight += weight;
  }
  // Evict LRU entries until back under the weight budget.  The newest entry
  // is never evicted, even when it alone exceeds the shard budget: a 1-entry
  // memo beats not caching an oversized instance at all.
  while (shard.weight > per_shard_capacity_ && shard.lru.size() > 1) {
    shard.weight -= shard.lru.back().weight;
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

CacheStats ResultCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.capacity = capacity_;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    stats.entries += shard.lru.size();
    stats.weight += shard.weight;
  }
  return stats;
}

void ResultCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.weight = 0;
  }
}

}  // namespace malsched::service
