#include "malsched/service/cache.hpp"

#include <functional>
#include <utility>

#include "malsched/support/contracts.hpp"

namespace malsched::service {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : shards_(shards == 0 ? 1 : shards),
      per_shard_capacity_((capacity + shards_.size() - 1) / shards_.size()),
      capacity_(capacity) {
  MALSCHED_EXPECTS_MSG(capacity > 0, "cache capacity must be positive");
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const CachedSolve> ResultCache::get(const std::string& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ResultCache::put(const std::string& key, CachedSolve value) {
  const std::size_t weight = entry_weight(value);
  auto shared = std::make_shared<const CachedSolve>(std::move(value));
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.weight -= it->second->weight;
    it->second->value = std::move(shared);
    it->second->weight = weight;
    shard.weight += weight;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(shared), weight});
    shard.index.emplace(key, shard.lru.begin());
    shard.weight += weight;
  }
  // Evict LRU entries until back under the weight budget.  The newest entry
  // is never evicted, even when it alone exceeds the shard budget: a 1-entry
  // memo beats not caching an oversized instance at all.
  while (shard.weight > per_shard_capacity_ && shard.lru.size() > 1) {
    shard.weight -= shard.lru.back().weight;
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

CacheStats ResultCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.capacity = capacity_;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    stats.entries += shard.lru.size();
    stats.weight += shard.weight;
  }
  return stats;
}

void ResultCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.weight = 0;
  }
}

}  // namespace malsched::service
