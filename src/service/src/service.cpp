#include "malsched/service/service.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "malsched/core/io.hpp"

namespace malsched::service {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

std::string at_line(std::size_t line_no, const std::string& message) {
  return "line " + std::to_string(line_no) + ": " + message;
}

// parse_instance numbers lines within the block body; shift any leading
// "line k:" so diagnostics point at the batch file's own line numbers.
std::string rebase_line_diagnostic(const std::string& message,
                                   std::size_t offset) {
  constexpr const char* prefix = "line ";
  if (message.rfind(prefix, 0) != 0) {
    return message;
  }
  std::size_t pos = std::char_traits<char>::length(prefix);
  std::size_t line = 0;
  bool any_digit = false;
  while (pos < message.size() && message[pos] >= '0' && message[pos] <= '9') {
    line = line * 10 + static_cast<std::size_t>(message[pos] - '0');
    ++pos;
    any_digit = true;
  }
  if (!any_digit) {
    return message;
  }
  return at_line(line + offset, message.substr(
                                    std::min(message.size(), pos + 2)));
}

}  // namespace

std::optional<BatchSpec> read_batch(std::istream& in, std::string* error) {
  BatchSpec batch;

  std::string line;
  std::size_t line_no = 0;
  std::string block_name;        // non-empty while inside an instance block
  std::string block_text;
  std::size_t block_start = 0;
  bool in_block = false;

  while (std::getline(in, line)) {
    ++line_no;
    std::string stripped = line;
    const auto hash = stripped.find('#');
    if (hash != std::string::npos) {
      stripped.resize(hash);
    }
    std::istringstream fields(stripped);
    std::string keyword;
    if (!(fields >> keyword)) {
      if (in_block) {
        block_text += '\n';  // keep block line numbering file-relative
      }
      continue;
    }
    if (keyword == "instance") {
      if (in_block) {
        set_error(error, at_line(line_no, "nested 'instance' block (missing 'end'?)"));
        return std::nullopt;
      }
      std::string name;
      if (!(fields >> name)) {
        set_error(error, at_line(line_no, "'instance' needs a name"));
        return std::nullopt;
      }
      if (batch.instances.count(name) != 0) {
        set_error(error, at_line(line_no, "duplicate instance '" + name + "'"));
        return std::nullopt;
      }
      in_block = true;
      block_name = name;
      block_text.clear();
      block_start = line_no;
    } else if (keyword == "end") {
      if (!in_block) {
        set_error(error, at_line(line_no, "'end' outside an instance block"));
        return std::nullopt;
      }
      std::string parse_error;
      auto instance = core::parse_instance(block_text, &parse_error);
      if (!instance) {
        set_error(error,
                  "instance '" + block_name + "' (line " +
                      std::to_string(block_start) + "): " +
                      rebase_line_diagnostic(parse_error, block_start));
        return std::nullopt;
      }
      batch.instances.emplace(block_name, std::move(*instance));
      in_block = false;
    } else if (in_block) {
      // Body lines are validated wholesale by core::parse_instance at 'end'.
      block_text += stripped;
      block_text += '\n';
    } else if (keyword == "solve") {
      BatchSpec::Request request;
      request.line = line_no;
      if (!(fields >> request.solver >> request.instance_name)) {
        set_error(error,
                  at_line(line_no, "'solve' needs <solver> <instance-name>"));
        return std::nullopt;
      }
      batch.requests.push_back(std::move(request));
    } else {
      set_error(error, at_line(line_no, "unknown keyword '" + keyword + "'"));
      return std::nullopt;
    }
  }
  if (in_block) {
    set_error(error, "instance '" + block_name + "' (line " +
                         std::to_string(block_start) + "): missing 'end'");
    return std::nullopt;
  }
  if (batch.requests.empty()) {
    set_error(error, "batch has no 'solve' requests");
    return std::nullopt;
  }
  return batch;
}

std::optional<BatchSpec> parse_batch(const std::string& text,
                                     std::string* error) {
  std::istringstream in(text);
  return read_batch(in, error);
}

ServiceReport run_service(const BatchSpec& batch,
                          const SolverRegistry& registry,
                          const ServiceOptions& options) {
  // Resolve names once; unknown instances become deterministic per-request
  // errors rather than failing the whole batch.
  std::vector<SolveRequest> requests;
  std::vector<std::size_t> request_index;       // into batch.requests
  std::vector<std::pair<std::size_t, std::string>> unresolved;
  requests.reserve(batch.requests.size());
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const auto& request = batch.requests[i];
    const auto it = batch.instances.find(request.instance_name);
    if (it == batch.instances.end()) {
      unresolved.emplace_back(i, "unknown instance '" + request.instance_name +
                                     "' (line " + std::to_string(request.line) +
                                     ")");
      continue;
    }
    requests.push_back(SolveRequest{request.solver, it->second});
    request_index.push_back(i);
  }

  ServiceReport report;
  report.results.resize(batch.requests.size());
  for (const auto& [index, message] : unresolved) {
    report.results[index].solver = batch.requests[index].solver;
    report.results[index].error = message;
  }

  // No cache object at all when disabled (use_cache false or capacity 0),
  // so telemetry can distinguish "cache off" from "cache on but cold".
  std::unique_ptr<ResultCache> cache;
  if (options.use_cache && options.cache_capacity > 0) {
    cache = std::make_unique<ResultCache>(options.cache_capacity);
  }
  support::ThreadPool pool(options.threads);
  BatchOptions batch_options;
  batch_options.pool = &pool;
  batch_options.cache = cache.get();

  const auto start = std::chrono::steady_clock::now();
  const std::size_t rounds = options.repeat == 0 ? 1 : options.repeat;
  // support::Sample keeps every observation for its quantiles; a large
  // batch x repeat product would hold one double per solve.  Decimate
  // deterministically so telemetry memory stays bounded (~8 MB) however
  // long the run is.
  constexpr std::size_t kMaxLatencySamples = std::size_t{1} << 20;
  const std::size_t total_solves = rounds * requests.size();
  const std::size_t stride =
      (total_solves + kMaxLatencySamples - 1) / kMaxLatencySamples;
  std::size_t seen = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    auto results = solve_batch(registry, requests, batch_options);
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (seen++ % stride == 0) {
        report.latencies.add(results[j].latency_seconds);
      }
      if (round + 1 == rounds) {
        report.results[request_index[j]] = std::move(results[j]);
      }
    }
  }
  report.total_solves = seen;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (cache) {
    report.cache = cache->stats();
  }
  return report;
}

namespace {

// Error messages embed client-controlled text (solver/instance names from
// the batch file); escape so the one-line-per-request stream stays parseable.
std::string escape_quoted(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      default: escaped += c; break;
    }
  }
  return escaped;
}

}  // namespace

void write_results(std::ostream& out, const ServiceReport& report) {
  std::ostringstream line;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const SolveResult& r = report.results[i];
    line.str("");
    line << "request " << i << " solver=" << escape_quoted(r.solver);
    if (!r.ok) {
      line << " status=error message=\"" << escape_quoted(r.error) << "\"";
    } else {
      line.precision(12);
      line << " status=ok objective=" << r.objective
           << " makespan=" << r.makespan;
    }
    out << line.str() << "\n";
  }
}

std::string format_results(const ServiceReport& report) {
  std::ostringstream out;
  write_results(out, report);
  return out.str();
}

std::string format_telemetry(const ServiceReport& report) {
  std::ostringstream out;
  // Counts/throughput come from total_solves — the latency sample is
  // decimated on long runs and would under-report both.
  const std::size_t n = report.latencies.size();
  out << "requests      : " << report.results.size() << " ("
      << report.total_solves << " solves incl. repeats)\n";
  if (report.wall_seconds > 0.0 && report.total_solves > 0) {
    out.precision(1);
    out << std::fixed << "throughput    : "
        << static_cast<double>(report.total_solves) / report.wall_seconds
        << " req/s\n";
    out.unsetf(std::ios::fixed);
  }
  if (n > 0) {
    out.precision(1);
    out << std::fixed << "latency (us)  : p50="
        << report.latencies.quantile(0.5) * 1e6
        << " p90=" << report.latencies.quantile(0.9) * 1e6
        << " p99=" << report.latencies.quantile(0.99) * 1e6
        << " max=" << report.latencies.max() * 1e6 << "\n";
    out.unsetf(std::ios::fixed);
  }
  if (report.cache.capacity == 0) {
    out << "cache         : disabled\n";
  } else {
    out.precision(4);
    out << "cache         : hits=" << report.cache.hits
        << " misses=" << report.cache.misses
        << " evictions=" << report.cache.evictions
        << " entries=" << report.cache.entries
        << " hit_rate=" << report.cache.hit_rate() << "\n";
  }
  return out.str();
}

}  // namespace malsched::service
