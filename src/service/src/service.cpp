#include "malsched/service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "malsched/core/generators.hpp"
#include "malsched/core/io.hpp"
#include "malsched/online/trace.hpp"
#include "malsched/support/rng.hpp"

namespace malsched::service {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

std::string at_line(std::size_t line_no, const std::string& message) {
  return "line " + std::to_string(line_no) + ": " + message;
}

// parse_instance numbers lines within the block body; shift any leading
// "line k:" so diagnostics point at the batch file's own line numbers.
std::string rebase_line_diagnostic(const std::string& message,
                                   std::size_t offset) {
  constexpr const char* prefix = "line ";
  if (message.rfind(prefix, 0) != 0) {
    return message;
  }
  std::size_t pos = std::char_traits<char>::length(prefix);
  std::size_t line = 0;
  bool any_digit = false;
  while (pos < message.size() && message[pos] >= '0' && message[pos] <= '9') {
    line = line * 10 + static_cast<std::size_t>(message[pos] - '0');
    ++pos;
    any_digit = true;
  }
  if (!any_digit) {
    return message;
  }
  return at_line(line + offset, message.substr(
                                    std::min(message.size(), pos + 2)));
}

std::optional<core::Family> family_from_name(const std::string& name) {
  for (const core::Family family : core::all_families()) {
    if (name == core::family_name(family)) {
      return family;
    }
  }
  return std::nullopt;
}

// Recursive descent over one stream; `include` re-enters with the included
// file's own directory so nested relative paths resolve naturally.  The
// sticky weight/deadline directives are locals here, which is what scopes
// them to their own file: an include starts fresh and leaks nothing back.
bool parse_stream(std::istream& in, const std::string& base_dir,
                  std::size_t depth, std::size_t max_depth, BatchSpec& batch,
                  std::string* error) {
  std::string line;
  std::size_t line_no = 0;
  std::string block_name;        // non-empty while inside an instance block
  std::string block_text;
  std::size_t block_start = 0;
  bool in_block = false;
  double current_weight = 1.0;             // `weight` directive state
  std::optional<double> current_deadline;  // `deadline` directive state

  while (std::getline(in, line)) {
    ++line_no;
    std::string stripped = line;
    const auto hash = stripped.find('#');
    if (hash != std::string::npos) {
      stripped.resize(hash);
    }
    std::istringstream fields(stripped);
    std::string keyword;
    if (!(fields >> keyword)) {
      if (in_block) {
        block_text += '\n';  // keep block line numbering file-relative
      }
      continue;
    }
    if (keyword == "instance") {
      if (in_block) {
        set_error(error, at_line(line_no, "nested 'instance' block (missing 'end'?)"));
        return false;
      }
      std::string name;
      if (!(fields >> name)) {
        set_error(error, at_line(line_no, "'instance' needs a name"));
        return false;
      }
      if (batch.instances.count(name) != 0) {
        set_error(error, at_line(line_no, "duplicate instance '" + name + "'"));
        return false;
      }
      in_block = true;
      block_name = name;
      block_text.clear();
      block_start = line_no;
    } else if (keyword == "end") {
      if (!in_block) {
        set_error(error, at_line(line_no, "'end' outside an instance block"));
        return false;
      }
      std::string parse_error;
      auto instance = core::parse_instance(block_text, &parse_error);
      if (!instance) {
        set_error(error,
                  "instance '" + block_name + "' (line " +
                      std::to_string(block_start) + "): " +
                      rebase_line_diagnostic(parse_error, block_start));
        return false;
      }
      batch.instances.emplace(block_name, std::move(*instance));
      in_block = false;
    } else if (in_block) {
      // Body lines are validated wholesale by core::parse_instance at 'end'.
      block_text += stripped;
      block_text += '\n';
    } else if (keyword == "solve") {
      BatchSpec::Request request;
      request.line = line_no;
      request.priority_weight = current_weight;
      request.deadline_seconds = current_deadline;
      if (!(fields >> request.solver >> request.instance_name)) {
        set_error(error,
                  at_line(line_no, "'solve' needs <solver> <instance-name>"));
        return false;
      }
      batch.requests.push_back(std::move(request));
    } else if (keyword == "weight") {
      double weight = 0.0;
      if (!(fields >> weight) || !std::isfinite(weight) || !(weight > 0.0)) {
        set_error(error,
                  at_line(line_no, "'weight' needs a positive number"));
        return false;
      }
      current_weight = weight;
    } else if (keyword == "deadline") {
      std::string text;
      if (!(fields >> text)) {
        set_error(error,
                  at_line(line_no, "'deadline' needs <seconds> or 'none'"));
        return false;
      }
      if (text == "none") {
        current_deadline.reset();
      } else {
        char* end = nullptr;
        const double seconds = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0' || !std::isfinite(seconds) ||
            seconds < 0.0) {
          set_error(error, at_line(line_no,
                                   "'deadline' needs a non-negative number "
                                   "of seconds or 'none'"));
          return false;
        }
        current_deadline = seconds;
      }
    } else if (keyword == "generate") {
      std::string name;
      std::string family_text;
      long long num_tasks = 0;
      double processors = 0.0;
      std::uint64_t seed = 0;
      if (!(fields >> name >> family_text >> num_tasks >> processors >>
            seed)) {
        set_error(error,
                  at_line(line_no,
                          "'generate' needs <name> <family> <tasks> "
                          "<processors> <seed>"));
        return false;
      }
      if (batch.instances.count(name) != 0) {
        set_error(error, at_line(line_no, "duplicate instance '" + name + "'"));
        return false;
      }
      const auto family = family_from_name(family_text);
      const auto trace_family = online::trace_family_from_name(family_text);
      if (!family && !trace_family) {
        std::string known;
        for (const core::Family f : core::all_families()) {
          known += known.empty() ? "" : ", ";
          known += core::family_name(f);
        }
        for (const online::TraceFamily f : online::all_trace_families()) {
          known += ", ";
          known += online::trace_family_name(f);
        }
        set_error(error, at_line(line_no, "unknown family '" + family_text +
                                              "' (known: " + known + ")"));
        return false;
      }
      constexpr long long kMaxGeneratedTasks = 1'000'000;
      if (num_tasks <= 0 || num_tasks > kMaxGeneratedTasks) {
        set_error(error,
                  at_line(line_no,
                          "'generate' task count must be in [1, " +
                              std::to_string(kMaxGeneratedTasks) + "]"));
        return false;
      }
      if (!(processors > 0.0)) {
        set_error(error,
                  at_line(line_no, "'generate' needs positive processors"));
        return false;
      }
      support::Rng rng(seed);
      if (family) {
        core::GeneratorConfig config;
        config.family = *family;
        config.num_tasks = static_cast<std::size_t>(num_tasks);
        config.processors = processors;
        batch.instances.emplace(name, core::generate(config, rng));
      } else {
        // Online trace families serve their closed-batch view here (tasks in
        // arrival order, release times dropped) so batch and online
        // experiments can share workloads; replay the same (family, n, P,
        // seed) tuple through online::generate_trace for the timed version.
        online::TraceConfig config;
        config.family = *trace_family;
        config.num_tasks = static_cast<std::size_t>(num_tasks);
        config.processors = processors;
        batch.instances.emplace(
            name, online::generate_trace(config, rng).to_instance());
      }
    } else if (keyword == "include") {
      // The rest of the line (comments already stripped) is the path, so
      // paths containing spaces work; trim surrounding whitespace.
      std::string path_text;
      std::getline(fields >> std::ws, path_text);
      while (!path_text.empty() &&
             (path_text.back() == ' ' || path_text.back() == '\t' ||
              path_text.back() == '\r')) {
        path_text.pop_back();
      }
      if (path_text.empty()) {
        set_error(error, at_line(line_no, "'include' needs a path"));
        return false;
      }
      if (depth + 1 > max_depth) {
        set_error(error,
                  at_line(line_no, "include depth exceeds " +
                                       std::to_string(max_depth) +
                                       " (cycle?) at '" + path_text + "'"));
        return false;
      }
      std::filesystem::path path(path_text);
      if (path.is_relative() && !base_dir.empty()) {
        path = std::filesystem::path(base_dir) / path;
      }
      std::ifstream included(path);
      if (!included) {
        set_error(error, at_line(line_no, "cannot open include '" +
                                              path.string() + "'"));
        return false;
      }
      std::string inner_error;
      if (!parse_stream(included, path.parent_path().string(), depth + 1,
                        max_depth, batch, &inner_error)) {
        set_error(error, at_line(line_no, "include '" + path.string() +
                                              "': " + inner_error));
        return false;
      }
    } else {
      set_error(error, at_line(line_no, "unknown keyword '" + keyword + "'"));
      return false;
    }
  }
  if (in_block) {
    set_error(error, "instance '" + block_name + "' (line " +
                         std::to_string(block_start) + "): missing 'end'");
    return false;
  }
  return true;
}

}  // namespace

std::optional<BatchSpec> read_batch(std::istream& in, std::string* error,
                                    const BatchReadOptions& options) {
  BatchSpec batch;
  if (!parse_stream(in, options.base_dir, 0, options.max_include_depth, batch,
                    error)) {
    return std::nullopt;
  }
  // Included files may carry only instance definitions; the top-level batch
  // is the one that must actually request work.
  if (batch.requests.empty()) {
    set_error(error, "batch has no 'solve' requests");
    return std::nullopt;
  }
  return batch;
}

std::optional<BatchSpec> parse_batch(const std::string& text,
                                     std::string* error,
                                     const BatchReadOptions& options) {
  std::istringstream in(text);
  return read_batch(in, error, options);
}

Scheduler::Options make_scheduler_options(const ServiceOptions& options) {
  Scheduler::Options scheduler_options;
  scheduler_options.threads = options.threads;
  scheduler_options.queue_capacity = options.queue_capacity;
  scheduler_options.cache_capacity = options.cache_capacity;
  scheduler_options.cache_ttl_seconds = options.cache_ttl_seconds;
  scheduler_options.use_cache =
      options.use_cache && options.cache_capacity > 0;
  scheduler_options.admission = options.fifo_admission
                                    ? Scheduler::Admission::Fifo
                                    : Scheduler::Admission::WeightedPriority;
  return scheduler_options;
}

ServiceReport run_service(const BatchSpec& batch,
                          const SolverRegistry& registry,
                          const ServiceOptions& options) {
  // Intern each named instance exactly once; every request on it then
  // shares the handle (and its precomputed canonical forms) instead of
  // copying the task vector per request.
  std::map<std::string, InstanceHandle> handles;
  for (const auto& [name, instance] : batch.instances) {
    handles.emplace(name, intern(instance));
  }

  // Resolve names once; unknown instances become deterministic per-request
  // ParseError results rather than failing the whole batch.
  struct Resolved {
    std::size_t index;  ///< into batch.requests
    const std::string* solver;
    const InstanceHandle* instance;
    double priority_weight;
    std::optional<double> deadline_seconds;
  };
  std::vector<Resolved> resolved;
  resolved.reserve(batch.requests.size());

  ServiceReport report;
  report.results.resize(batch.requests.size());
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const auto& request = batch.requests[i];
    const auto it = handles.find(request.instance_name);
    if (it == handles.end()) {
      report.results[i] = SolveResult::failure(
          request.solver, ErrorCode::ParseError,
          "unknown instance '" + request.instance_name + "' (line " +
              std::to_string(request.line) + ")");
      continue;
    }
    resolved.push_back(Resolved{i, &request.solver, &it->second,
                                request.priority_weight,
                                request.deadline_seconds});
  }

  Scheduler scheduler(registry, make_scheduler_options(options));

  const auto start = std::chrono::steady_clock::now();
  const std::size_t rounds = options.repeat == 0 ? 1 : options.repeat;
  // support::Sample keeps every observation for its quantiles; a large
  // batch x repeat product would hold one double per solve.  Decimate
  // deterministically so telemetry memory stays bounded (~8 MB) however
  // long the run is.
  constexpr std::size_t kMaxLatencySamples = std::size_t{1} << 20;
  const std::size_t total_solves = rounds * resolved.size();
  const std::size_t stride =
      total_solves == 0
          ? 1
          : (total_solves + kMaxLatencySamples - 1) / kMaxLatencySamples;
  std::size_t seen = 0;
  std::vector<Ticket> tickets;
  tickets.reserve(resolved.size());
  for (std::size_t round = 0; round < rounds; ++round) {
    tickets.clear();
    for (const Resolved& request : resolved) {
      SubmitOptions submit_options;
      submit_options.priority_weight = request.priority_weight;
      if (request.deadline_seconds) {
        // The directive is a latency budget: it starts at this submit, so
        // every repeat round gets the same budget.
        submit_options.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    std::min(*request.deadline_seconds,
                             kMaxDeadlineBudgetSeconds)));
      }
      tickets.push_back(
          scheduler.submit(*request.solver, *request.instance, submit_options));
    }
    for (std::size_t j = 0; j < tickets.size(); ++j) {
      SolveResult result = tickets[j].get();
      if (seen++ % stride == 0) {
        report.latencies.add(result.latency_seconds);
      }
      if (round + 1 == rounds) {
        report.results[resolved[j].index] = std::move(result);
      }
    }
  }
  report.total_solves = seen;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.cache = scheduler.cache_stats();
  return report;
}

void write_results(std::ostream& out, const ServiceReport& report) {
  // Error messages embed client-controlled text (solver/instance names from
  // the batch file); escape so the one-line-per-request stream stays
  // parseable (escape_result_text is shared with the shard wire protocol).
  std::ostringstream line;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const SolveResult& r = report.results[i];
    line.str("");
    line << "request " << i << " solver=" << escape_result_text(r.solver);
    if (!r.ok()) {
      line << " status=error code=" << error_code_name(r.error().code)
           << " message=\"" << escape_result_text(r.error().detail) << "\"";
    } else {
      line.precision(12);
      line << " status=ok objective=" << r.objective()
           << " makespan=" << r.makespan();
    }
    out << line.str() << "\n";
  }
}

std::string format_results(const ServiceReport& report) {
  std::ostringstream out;
  write_results(out, report);
  return out.str();
}

std::string format_telemetry(const ServiceReport& report) {
  std::ostringstream out;
  // Counts/throughput come from total_solves — the latency sample is
  // decimated on long runs and would under-report both.
  const std::size_t n = report.latencies.size();
  out << "requests      : " << report.results.size() << " ("
      << report.total_solves << " solves incl. repeats)\n";
  if (report.wall_seconds > 0.0 && report.total_solves > 0) {
    out.precision(1);
    out << std::fixed << "throughput    : "
        << static_cast<double>(report.total_solves) / report.wall_seconds
        << " req/s\n";
    out.unsetf(std::ios::fixed);
  }
  if (n > 0) {
    out.precision(1);
    out << std::fixed << "latency (us)  : p50="
        << report.latencies.quantile(0.5) * 1e6
        << " p90=" << report.latencies.quantile(0.9) * 1e6
        << " p99=" << report.latencies.quantile(0.99) * 1e6
        << " max=" << report.latencies.max() * 1e6 << "\n";
    out.unsetf(std::ios::fixed);
  }
  if (report.cache.capacity == 0) {
    out << "cache         : disabled\n";
  } else {
    out.precision(4);
    out << "cache         : hits=" << report.cache.hits
        << " misses=" << report.cache.misses
        << " evictions=" << report.cache.evictions
        << " expired=" << report.cache.expired
        << " admitted=" << report.cache.admitted
        << " rejected=" << report.cache.rejected
        << " entries=" << report.cache.entries
        << " weight=" << report.cache.weight << "/" << report.cache.capacity
        << " hit_rate=" << report.cache.hit_rate() << "\n";
  }
  return out.str();
}

}  // namespace malsched::service
