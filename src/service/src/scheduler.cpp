#include "malsched/service/scheduler.hpp"

#include <cmath>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <utility>

#include "malsched/service/canonical.hpp"

namespace malsched::service {

namespace detail {

struct Interned {
  explicit Interned(core::Instance inst) : instance(std::move(inst)) {}

  core::Instance instance;

  struct Quotient {
    CanonicalForm form;
    std::string text;  ///< canonical_text(form), the cache-key material
    bool safe;         ///< well_conditioned(form)
  };

  /// The canonical quotient for permute on/off, built thread-safely on
  /// first use and cached for the handle's lifetime.  Lazy so handles whose
  /// requests never touch a cache (cache disabled, non-cacheable solver)
  /// carry no canonical copies or key strings.
  const Quotient& quotient(bool permute) const {
    const std::size_t i = permute ? 1 : 0;
    std::call_once(once_[i], [this, permute, i] {
      CanonicalOptions options;
      options.permute = permute;
      CanonicalForm form = canonicalize(instance, options);
      std::string text = canonical_text(form);
      const bool safe = well_conditioned(form);
      quotients_[i] = std::make_unique<Quotient>(
          Quotient{std::move(form), std::move(text), safe});
    });
    return *quotients_[i];
  }

 private:
  mutable std::once_flag once_[2];
  mutable std::unique_ptr<Quotient> quotients_[2];
};

}  // namespace detail

InstanceHandle intern(core::Instance instance) {
  return InstanceHandle(
      std::make_shared<const detail::Interned>(std::move(instance)));
}

const core::Instance& InstanceHandle::instance() const {
  MALSCHED_EXPECTS_MSG(valid(), "instance() on an invalid InstanceHandle");
  return interned_->instance;
}

std::uint64_t InstanceHandle::key() const {
  return interned_ == nullptr ? 0 : interned_->quotient(true).form.key;
}

namespace detail {

namespace {

/// True for the failure classes minted by a fired cancellation token; these
/// must short-circuit retry/fallback paths — re-solving an abandoned
/// request defeats the point of abandoning it.
bool is_abort_code(ErrorCode code) noexcept {
  return code == ErrorCode::Cancelled || code == ErrorCode::DeadlineExceeded;
}

// Canonical-space solve through the cache: look up, solve-and-fill on miss,
// denormalize back to the client's task ids and units.  Failed solves are
// never cached.
SolveResult solve_canonical(const SolverRegistry& registry,
                            const std::string& solver,
                            const core::Instance& client_instance,
                            const CanonicalForm& form,
                            const std::string& form_text, ResultCache& cache,
                            const SolveContext& context) {
  const std::string key = solver + "\n" + form_text;

  if (auto cached = cache.get(key)) {
    SolveResult result = SolveResult::success(
        solver,
        SolveOutput{form.objective_scale * cached->objective,
                    form.time_scale * cached->makespan,
                    denormalize_completions(form, cached->completions)});
    result.cache_hit = true;
    return result;
  }

  // Miss: solve in canonical space so the entry serves the whole
  // equivalence class, then map back to the request's units.
  SolveResult canonical_result = registry.solve(solver, form.instance, context);
  if (!canonical_result.ok()) {
    // A fired cancellation token is not a diagnostics problem: return the
    // abort as-is instead of burning a second full solve on a request
    // nobody is waiting for.
    if (is_abort_code(canonical_result.error().code)) {
      return canonical_result;
    }
    // Error diagnostics name task indices; re-solve in client space so the
    // message points at the client's task ids, not the canonical ordering.
    // Errors are the rare path, so the duplicate work is acceptable.
    return registry.solve(solver, client_instance, context);
  }
  const SolveOutput& canonical = canonical_result.output();
  cache.put(key, CachedSolve{canonical.objective, canonical.makespan,
                             canonical.completions});
  return SolveResult::success(
      solver,
      SolveOutput{form.objective_scale * canonical.objective,
                  form.time_scale * canonical.makespan,
                  denormalize_completions(form, canonical.completions)});
}

}  // namespace

SolveResult solve_dispatch(const SolverRegistry& registry,
                           const std::string& solver,
                           const InstanceHandle& instance, ResultCache* cache,
                           const SolveContext& context) {
  if (!instance.valid()) {
    return SolveResult::failure(solver, ErrorCode::ParseError,
                                "invalid (empty) instance handle");
  }
  const Interned& interned = *instance.interned_;
  try {
    const SolverRegistry::SolverInfo* info = registry.find(solver);
    if (cache != nullptr && info != nullptr && info->cacheable &&
        interned.instance.size() > 0) {
      // Pick the quotient the solver supports: permutation + scale for
      // order-invariant solvers, scale only otherwise (canonical.hpp).
      const Interned::Quotient& quotient =
          interned.quotient(info->order_invariant);
      if (!quotient.safe) {
        // Wide dynamic range: rescaling would push values into the solvers'
        // absolute tolerances and corrupt the result.  Solve in client
        // space, uncached — correctness over memoization.
        return registry.solve(solver, interned.instance, context);
      }
      return solve_canonical(registry, solver, interned.instance,
                             quotient.form, quotient.text, *cache, context);
    }
    return registry.solve(solver, interned.instance, context);
  } catch (const std::exception& e) {
    return SolveResult::failure(solver, ErrorCode::SolverFailure,
                                std::string("solver threw: ") + e.what());
  } catch (...) {
    // Custom solvers are arbitrary user callables; contain non-std throws
    // too so one bad request cannot abort the whole stream.
    return SolveResult::failure(solver, ErrorCode::SolverFailure,
                                "solver threw a non-standard exception");
  }
}

/// Queue rank: lexicographic (score, admission id).  FIFO admission leaves
/// every score 0 so ids — assigned in admission order — decide; priority
/// admission computes the weighted-shortest-estimated-work score.  Ranks
/// are immutable after admission, so std::multimap gives ordered pops and
/// O(log n) cancellation erases without any re-heapify.
struct QueueKey {
  double score = 0.0;
  std::uint64_t id = 0;

  bool operator<(const QueueKey& other) const noexcept {
    if (score != other.score) {
      return score < other.score;
    }
    return id < other.id;
  }
};

struct Job {
  std::string solver;
  InstanceHandle instance;
  std::shared_ptr<TicketShared> state;
  std::chrono::steady_clock::time_point admitted;
};

using AdmissionQueue = std::multimap<QueueKey, Job>;

/// Queue guts, co-owned by the Scheduler and every outstanding Ticket so
/// Ticket::cancel() can safely lock/erase even after ~Scheduler (which
/// drains the queue first, so post-destruction cancels find every ticket
/// already resolved and become no-ops).
struct SchedulerShared {
  std::mutex mutex;
  std::condition_variable not_empty;
  std::condition_variable not_full;
  AdmissionQueue queue;
  bool closed = false;
  std::uint64_t next_ticket_id = 0;
  /// Rank origin: scores are seconds-since-epoch of admission plus the
  /// aged work estimate, so they stay small and lose no double precision.
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

/// Per-ticket shared state.  `stage` and `queue_pos` are guarded by the
/// owner's mutex; the promise is written by whoever performs the
/// Queued->Resolved transition (worker or cancel()), which the mutex makes
/// unique; the CancelSource flag is internally atomic and polled lock-free
/// by the solver.
struct TicketShared {
  enum class Stage { Queued, Running, Resolved };

  std::shared_ptr<SchedulerShared> owner;
  Stage stage = Stage::Queued;
  core::CancelSource cancel;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::promise<SolveResult> promise;
  std::string solver;             ///< for failure results minted by cancel()
  AdmissionQueue::iterator queue_pos;  ///< valid only while Queued
};

}  // namespace detail

bool Ticket::cancel() noexcept {
  if (shared_ == nullptr) {
    return false;  // invalid, or never admitted (QueueClosed fast path)
  }
  detail::TicketShared& state = *shared_;
  std::promise<SolveResult> promise;
  {
    const std::lock_guard<std::mutex> lock(state.owner->mutex);
    switch (state.stage) {
      case detail::TicketShared::Stage::Queued:
        // Remove the queued work outright: the slot frees for backpressured
        // submitters and no worker ever spends a solve on it.
        state.owner->queue.erase(state.queue_pos);
        state.stage = detail::TicketShared::Stage::Resolved;
        promise = std::move(state.promise);
        break;
      case detail::TicketShared::Stage::Running:
        // A worker owns the job: flip the cooperative flag; cancellation-
        // aware solvers abort at their next node boundary, others finish.
        state.cancel.request_cancel();
        return true;
      case detail::TicketShared::Stage::Resolved:
        return false;
    }
  }
  state.owner->not_full.notify_one();
  promise.set_value(SolveResult::failure(
      state.solver, ErrorCode::Cancelled,
      "request cancelled while queued; no solve was started"));
  return true;
}

Scheduler::Scheduler(const SolverRegistry& registry, Options options)
    : registry_(registry),
      queue_capacity_(options.queue_capacity == 0 ? 1
                                                  : options.queue_capacity),
      admission_(options.admission),
      aging_factor_(std::isfinite(options.aging_factor) &&
                            options.aging_factor >= 0.0
                        ? options.aging_factor
                        : Options{}.aging_factor),
      shared_(std::make_shared<detail::SchedulerShared>()) {
  if (!options.use_cache) {
    cache_ = nullptr;  // an explicit off-switch beats a borrowed cache
  } else if (options.cache != nullptr) {
    cache_ = options.cache;
  } else if (options.cache_capacity > 0) {
    CacheOptions cache_options;
    cache_options.capacity = options.cache_capacity;
    cache_options.admission = options.cache_admission;
    if (options.cache_ttl_seconds) {
      cache_options.ttl =
          std::chrono::duration<double>(*options.cache_ttl_seconds);
    }
    owned_cache_ = std::make_unique<ResultCache>(cache_options);
    cache_ = owned_cache_.get();
  }
  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  if (threads == 0) {
    threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() {
  close();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

Ticket Scheduler::submit(std::string solver, InstanceHandle instance,
                         const SubmitOptions& options) {
  Ticket ticket;
  auto state = std::make_shared<detail::TicketShared>();
  state->owner = shared_;
  state->deadline = options.deadline;
  state->solver = solver;
  ticket.future_ = state->promise.get_future();

  const auto admitted = std::chrono::steady_clock::now();
  double score = 0.0;
  if (admission_ == Admission::WeightedPriority) {
    double weight = options.priority_weight;
    if (!std::isfinite(weight) || !(weight > 0.0)) {
      weight = 1.0;  // clamp nonsense weights instead of corrupting ranks
    }
    double estimate = registry_.estimated_seconds(
        solver, instance.valid() ? instance.size() : 0);
    if (std::isnan(estimate) || estimate < 0.0) {
      // A broken user cost hint must not poison the rank: NaN scores would
      // violate the queue comparator's strict weak ordering.  Fall back to
      // arrival-time rank.  (+inf is fine — it compares consistently and
      // just parks the request behind everything, aging aside.)
      estimate = 0.0;
    }
    score =
        std::chrono::duration<double>(admitted - shared_->epoch).count() +
        aging_factor_ * estimate / weight;
  }

  {
    std::unique_lock<std::mutex> lock(shared_->mutex);
    // Backpressure: block while the admission queue is at capacity.
    shared_->not_full.wait(lock, [this] {
      return shared_->closed || shared_->queue.size() < queue_capacity_;
    });
    if (shared_->closed) {
      lock.unlock();
      // Never admitted: resolve immediately, leave id 0 and shared_ null
      // (cancel() on this ticket is a no-op).
      state->stage = detail::TicketShared::Stage::Resolved;
      state->promise.set_value(SolveResult::failure(
          std::move(solver), ErrorCode::QueueClosed,
          "scheduler is closed; request was not admitted"));
      return ticket;
    }
    // Id assigned at the actual enqueue, inside the same critical section,
    // so ids reflect admission order even when several submitters were
    // blocked on backpressure.
    ticket.id_ = ++shared_->next_ticket_id;
    state->queue_pos = shared_->queue.emplace(
        detail::QueueKey{score, ticket.id_},
        detail::Job{std::move(solver), std::move(instance), state, admitted});
    ticket.shared_ = std::move(state);
  }
  shared_->not_empty.notify_one();
  return ticket;
}

void Scheduler::close() noexcept {
  {
    const std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->closed = true;
  }
  shared_->not_empty.notify_all();
  shared_->not_full.notify_all();
}

bool Scheduler::closed() const noexcept {
  const std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->closed;
}

CacheStats Scheduler::cache_stats() const {
  return cache_ == nullptr ? CacheStats{} : cache_->stats();
}

void Scheduler::worker_loop() {
  detail::SchedulerShared& shared = *shared_;
  for (;;) {
    detail::Job job;
    {
      std::unique_lock<std::mutex> lock(shared.mutex);
      shared.not_empty.wait(
          lock, [&shared] { return shared.closed || !shared.queue.empty(); });
      if (shared.queue.empty()) {
        return;  // closed and drained
      }
      auto node = shared.queue.extract(shared.queue.begin());
      job = std::move(node.mapped());
      job.state->stage = detail::TicketShared::Stage::Running;
    }
    shared.not_full.notify_one();

    detail::TicketShared& state = *job.state;
    SolveResult result;
    const auto started = std::chrono::steady_clock::now();
    const double queued_seconds =
        std::chrono::duration<double>(started - job.admitted).count();
    if (state.cancel.cancel_requested()) {
      // cancel() landed in the pop-to-here window: honor it without solving.
      result = SolveResult::failure(
          job.solver, ErrorCode::Cancelled,
          "request cancelled before the solve started");
    } else if (state.deadline && started >= *state.deadline) {
      result = SolveResult::failure(
          job.solver, ErrorCode::DeadlineExceeded,
          "deadline expired after " + std::to_string(queued_seconds) +
              "s in the admission queue; no solve was started");
    } else {
      SolveContext context;
      context.cancel = state.deadline
                           ? state.cancel.token_with_deadline(*state.deadline)
                           : state.cancel.token();
      result = detail::solve_dispatch(registry_, job.solver, job.instance,
                                      cache_, context);
      // Reclassify only when this request actually carried a deadline — a
      // context-aware solver may mint Cancelled for its own reasons, which
      // must not be relabeled as a deadline miss.
      if (!result.ok() && result.error().code == ErrorCode::Cancelled &&
          state.deadline && !state.cancel.cancel_requested()) {
        // The token fired, but nobody called cancel(): it was the deadline.
        result = SolveResult::failure(
            job.solver, ErrorCode::DeadlineExceeded,
            "deadline expired mid-solve: " + result.error().detail);
      }
    }
    result.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job.admitted)
            .count();
    {
      // Publish the Resolved stage under the lock so a racing cancel()
      // either sees Running (flag only, result already decided) or Resolved
      // (no-op) — never a half-resolved promise.
      const std::lock_guard<std::mutex> lock(shared.mutex);
      state.stage = detail::TicketShared::Stage::Resolved;
    }
    state.promise.set_value(std::move(result));
  }
}

}  // namespace malsched::service
