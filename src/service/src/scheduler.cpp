#include "malsched/service/scheduler.hpp"

#include <exception>
#include <utility>

#include "malsched/service/canonical.hpp"

namespace malsched::service {

namespace detail {

struct Interned {
  explicit Interned(core::Instance inst) : instance(std::move(inst)) {}

  core::Instance instance;

  struct Quotient {
    CanonicalForm form;
    std::string text;  ///< canonical_text(form), the cache-key material
    bool safe;         ///< well_conditioned(form)
  };

  /// The canonical quotient for permute on/off, built thread-safely on
  /// first use and cached for the handle's lifetime.  Lazy so handles whose
  /// requests never touch a cache (cache disabled, non-cacheable solver)
  /// carry no canonical copies or key strings.
  const Quotient& quotient(bool permute) const {
    const std::size_t i = permute ? 1 : 0;
    std::call_once(once_[i], [this, permute, i] {
      CanonicalOptions options;
      options.permute = permute;
      CanonicalForm form = canonicalize(instance, options);
      std::string text = canonical_text(form);
      const bool safe = well_conditioned(form);
      quotients_[i] = std::make_unique<Quotient>(
          Quotient{std::move(form), std::move(text), safe});
    });
    return *quotients_[i];
  }

 private:
  mutable std::once_flag once_[2];
  mutable std::unique_ptr<Quotient> quotients_[2];
};

}  // namespace detail

InstanceHandle intern(core::Instance instance) {
  return InstanceHandle(
      std::make_shared<const detail::Interned>(std::move(instance)));
}

const core::Instance& InstanceHandle::instance() const {
  MALSCHED_EXPECTS_MSG(valid(), "instance() on an invalid InstanceHandle");
  return interned_->instance;
}

std::uint64_t InstanceHandle::key() const {
  return interned_ == nullptr ? 0 : interned_->quotient(true).form.key;
}

namespace detail {

namespace {

// Canonical-space solve through the cache: look up, solve-and-fill on miss,
// denormalize back to the client's task ids and units.  Failed solves are
// never cached.
SolveResult solve_canonical(const SolverRegistry& registry,
                            const std::string& solver,
                            const core::Instance& client_instance,
                            const CanonicalForm& form,
                            const std::string& form_text, ResultCache& cache) {
  const std::string key = solver + "\n" + form_text;

  if (auto cached = cache.get(key)) {
    SolveResult result = SolveResult::success(
        solver,
        SolveOutput{form.objective_scale * cached->objective,
                    form.time_scale * cached->makespan,
                    denormalize_completions(form, cached->completions)});
    result.cache_hit = true;
    return result;
  }

  // Miss: solve in canonical space so the entry serves the whole
  // equivalence class, then map back to the request's units.
  SolveResult canonical_result = registry.solve(solver, form.instance);
  if (!canonical_result.ok()) {
    // Error diagnostics name task indices; re-solve in client space so the
    // message points at the client's task ids, not the canonical ordering.
    // Errors are the rare path, so the duplicate work is acceptable.
    return registry.solve(solver, client_instance);
  }
  const SolveOutput& canonical = canonical_result.output();
  cache.put(key, CachedSolve{canonical.objective, canonical.makespan,
                             canonical.completions});
  return SolveResult::success(
      solver,
      SolveOutput{form.objective_scale * canonical.objective,
                  form.time_scale * canonical.makespan,
                  denormalize_completions(form, canonical.completions)});
}

}  // namespace

SolveResult solve_dispatch(const SolverRegistry& registry,
                           const std::string& solver,
                           const InstanceHandle& instance,
                           ResultCache* cache) {
  if (!instance.valid()) {
    return SolveResult::failure(solver, ErrorCode::ParseError,
                                "invalid (empty) instance handle");
  }
  const Interned& interned = *instance.interned_;
  try {
    const SolverRegistry::SolverInfo* info = registry.find(solver);
    if (cache != nullptr && info != nullptr && info->cacheable &&
        interned.instance.size() > 0) {
      // Pick the quotient the solver supports: permutation + scale for
      // order-invariant solvers, scale only otherwise (canonical.hpp).
      const Interned::Quotient& quotient =
          interned.quotient(info->order_invariant);
      if (!quotient.safe) {
        // Wide dynamic range: rescaling would push values into the solvers'
        // absolute tolerances and corrupt the result.  Solve in client
        // space, uncached — correctness over memoization.
        return registry.solve(solver, interned.instance);
      }
      return solve_canonical(registry, solver, interned.instance,
                             quotient.form, quotient.text, *cache);
    }
    return registry.solve(solver, interned.instance);
  } catch (const std::exception& e) {
    return SolveResult::failure(solver, ErrorCode::SolverFailure,
                                std::string("solver threw: ") + e.what());
  } catch (...) {
    // Custom solvers are arbitrary user callables; contain non-std throws
    // too so one bad request cannot abort the whole stream.
    return SolveResult::failure(solver, ErrorCode::SolverFailure,
                                "solver threw a non-standard exception");
  }
}

}  // namespace detail

Scheduler::Scheduler(const SolverRegistry& registry, Options options)
    : registry_(registry),
      queue_capacity_(options.queue_capacity == 0 ? 1
                                                  : options.queue_capacity) {
  if (!options.use_cache) {
    cache_ = nullptr;  // an explicit off-switch beats a borrowed cache
  } else if (options.cache != nullptr) {
    cache_ = options.cache;
  } else if (options.cache_capacity > 0) {
    owned_cache_ = std::make_unique<ResultCache>(options.cache_capacity);
    cache_ = owned_cache_.get();
  }
  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  if (threads == 0) {
    threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() {
  close();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

Ticket Scheduler::submit(std::string solver, InstanceHandle instance) {
  Ticket ticket;
  std::promise<SolveResult> promise;
  ticket.future_ = promise.get_future();
  const auto admitted = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Backpressure: block while the admission queue is at capacity.
    not_full_.wait(lock, [this] {
      return closed_ || queue_.size() < queue_capacity_;
    });
    if (closed_) {
      lock.unlock();
      promise.set_value(SolveResult::failure(
          std::move(solver), ErrorCode::QueueClosed,
          "scheduler is closed; request was not admitted"));
      return ticket;  // never admitted: id stays 0
    }
    // Id assigned at the actual enqueue, inside the same critical section,
    // so ids reflect admission (= FIFO processing) order even when several
    // submitters were blocked on backpressure.
    ticket.id_ = ++next_ticket_id_;
    queue_.push_back(Job{std::move(solver), std::move(instance),
                         std::move(promise), admitted});
  }
  not_empty_.notify_one();
  return ticket;
}

void Scheduler::close() noexcept {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool Scheduler::closed() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

CacheStats Scheduler::cache_stats() const {
  return cache_ == nullptr ? CacheStats{} : cache_->stats();
}

void Scheduler::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // closed and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    SolveResult result =
        detail::solve_dispatch(registry_, job.solver, job.instance, cache_);
    result.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job.admitted)
            .count();
    job.promise.set_value(std::move(result));
  }
}

}  // namespace malsched::service
