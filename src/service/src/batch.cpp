#include "malsched/service/batch.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "malsched/service/canonical.hpp"

namespace malsched::service {

namespace {

SolveResult solve_via_cache(const SolverRegistry& registry,
                            const SolveRequest& request,
                            const SolverRegistry::SolverInfo& info,
                            ResultCache& cache) {
  CanonicalOptions canonical_options;
  canonical_options.permute = info.order_invariant;
  const CanonicalForm form =
      canonicalize(request.instance, canonical_options);
  if (!well_conditioned(form)) {
    // Wide dynamic range: rescaling would push values into the solvers'
    // absolute tolerances and corrupt the result.  Solve in client space,
    // uncached — correctness over memoization.
    return registry.solve(request);
  }
  const std::string key = request.solver + "\n" + canonical_text(form);

  if (auto cached = cache.get(key)) {
    SolveResult result;
    result.ok = true;
    result.solver = request.solver;
    result.cache_hit = true;
    result.objective = form.objective_scale * cached->objective;
    result.makespan = form.time_scale * cached->makespan;
    result.completions = denormalize_completions(form, cached->completions);
    return result;
  }

  // Miss: solve in canonical space so the entry serves the whole
  // equivalence class, then map back to the request's units.
  SolveRequest canonical_request{request.solver, form.instance};
  SolveResult canonical_result = registry.solve(canonical_request);
  if (!canonical_result.ok) {
    // Error diagnostics name task indices; re-solve in client space so the
    // message points at the client's task ids, not the canonical ordering.
    // Errors are the rare path, so the duplicate work is acceptable.
    return registry.solve(request);
  }
  cache.put(key, CachedSolve{canonical_result.objective,
                             canonical_result.makespan,
                             canonical_result.completions});
  SolveResult result = std::move(canonical_result);
  result.objective = form.objective_scale * result.objective;
  result.makespan = form.time_scale * result.makespan;
  result.completions = denormalize_completions(form, result.completions);
  return result;
}

}  // namespace

SolveResult solve_cached(const SolverRegistry& registry,
                         const SolveRequest& request, ResultCache* cache) {
  const auto start = std::chrono::steady_clock::now();
  SolveResult result;
  try {
    const SolverRegistry::SolverInfo* info = registry.find(request.solver);
    if (cache != nullptr && info != nullptr && info->cacheable &&
        request.instance.size() > 0) {
      result = solve_via_cache(registry, request, *info, *cache);
    } else {
      result = registry.solve(request);
    }
  } catch (const std::exception& e) {
    result = SolveResult{};
    result.solver = request.solver;
    result.error = std::string("solver threw: ") + e.what();
  } catch (...) {
    // Custom solvers are arbitrary user callables; contain non-std throws
    // too so one bad request cannot abort the whole batch.
    result = SolveResult{};
    result.solver = request.solver;
    result.error = "solver threw a non-standard exception";
  }
  result.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

std::vector<SolveResult> solve_batch(const SolverRegistry& registry,
                                     std::span<const SolveRequest> requests,
                                     const BatchOptions& options) {
  std::vector<SolveResult> results(requests.size());
  const auto worker = [&](std::size_t i) {
    results[i] = solve_cached(registry, requests[i], options.cache);
  };
  if (options.pool != nullptr) {
    options.pool->parallel_for(0, requests.size(), worker);
  } else if (options.threads == 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      worker(i);
    }
  } else {
    support::ThreadPool pool(options.threads);
    pool.parallel_for(0, requests.size(), worker);
  }
  return results;
}

}  // namespace malsched::service
