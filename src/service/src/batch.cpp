#include "malsched/service/batch.hpp"

#include <chrono>
#include <utility>

namespace malsched::service {

SolveResult solve_cached(const SolverRegistry& registry,
                         const std::string& solver,
                         const InstanceHandle& instance, ResultCache* cache) {
  const auto start = std::chrono::steady_clock::now();
  SolveResult result = detail::solve_dispatch(registry, solver, instance, cache);
  result.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

std::vector<SolveResult> solve_batch(const SolverRegistry& registry,
                                     std::span<const BatchRequest> requests,
                                     const BatchOptions& options) {
  Scheduler::Options scheduler_options;
  scheduler_options.threads = options.threads;
  scheduler_options.queue_capacity = options.queue_capacity;
  scheduler_options.cache = options.cache;
  scheduler_options.use_cache = options.cache != nullptr;
  Scheduler scheduler(registry, scheduler_options);
  return solve_batch(scheduler, requests);
}

std::vector<SolveResult> solve_batch(Scheduler& scheduler,
                                     std::span<const BatchRequest> requests) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (const BatchRequest& request : requests) {
    tickets.push_back(scheduler.submit(request.solver, request.instance));
  }
  std::vector<SolveResult> results;
  results.reserve(requests.size());
  for (Ticket& ticket : tickets) {
    results.push_back(ticket.get());
  }
  return results;
}

}  // namespace malsched::service
