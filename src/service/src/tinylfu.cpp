#include "malsched/service/tinylfu.hpp"

#include <algorithm>
#include <bit>

#include "malsched/support/contracts.hpp"
#include "malsched/support/rng.hpp"

namespace malsched::service {

namespace {

// Fixed per-row tweaks: re-mixing the caller's hash through splitmix64 with
// a distinct odd seed per row gives kRows near-independent hash functions
// from one 64-bit input (the standard double-hashing shortcut).
constexpr std::uint64_t kRowSeed[TinyLfu::kRows] = {
    0x9e3779b97f4a7c15ULL,
    0xbf58476d1ce4e5b9ULL,
    0x94d049bb133111ebULL,
    0xd6e8feb86659fd93ULL,
};

}  // namespace

TinyLfu::TinyLfu(const TinyLfuOptions& options) {
  MALSCHED_EXPECTS_MSG(options.counters > 0,
                       "tinylfu needs at least one counter per row");
  const std::size_t width = std::bit_ceil(options.counters);
  mask_ = width - 1;
  sample_size_ =
      options.sample_size > 0 ? options.sample_size : 16 * width;
  rows_.assign(static_cast<std::size_t>(kRows) * width, 0);
  doorkeeper_.assign((width + 63) / 64, 0);
}

std::size_t TinyLfu::slot(std::uint64_t key_hash, std::uint32_t row) const {
  std::uint64_t state = key_hash ^ kRowSeed[row];
  return static_cast<std::size_t>(support::splitmix64(state)) & mask_;
}

void TinyLfu::record(std::uint64_t key_hash) {
  bool fresh = false;
  for (std::uint32_t r = 0; r < kRows; ++r) {
    const std::size_t bit = slot(key_hash, r);
    std::uint64_t& word = doorkeeper_[bit >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
    if ((word & mask) == 0) {
      word |= mask;
      fresh = true;
    }
  }
  if (!fresh) {
    // Conservative increment: only the rows currently at the minimum grow,
    // so one key's repeats inflate collided slots as little as possible.
    std::uint32_t min = kCounterMax;
    std::size_t slots[kRows];
    for (std::uint32_t r = 0; r < kRows; ++r) {
      slots[r] = static_cast<std::size_t>(r) * (mask_ + 1) + slot(key_hash, r);
      min = std::min<std::uint32_t>(min, rows_[slots[r]]);
    }
    if (min < kCounterMax) {
      for (std::uint32_t r = 0; r < kRows; ++r) {
        if (rows_[slots[r]] == min) {
          ++rows_[slots[r]];
        }
      }
    }
  }
  if (++sampled_ >= sample_size_) {
    halve();
  }
}

std::uint32_t TinyLfu::estimate(std::uint64_t key_hash) const {
  std::uint32_t min = kCounterMax;
  bool in_door = true;
  for (std::uint32_t r = 0; r < kRows; ++r) {
    const std::size_t bit = slot(key_hash, r);
    in_door = in_door &&
              (doorkeeper_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) != 0;
    min = std::min<std::uint32_t>(
        min, rows_[static_cast<std::size_t>(r) * (mask_ + 1) + bit]);
  }
  return min + (in_door ? 1u : 0u);
}

void TinyLfu::halve() {
  for (std::uint8_t& counter : rows_) {
    counter = static_cast<std::uint8_t>(counter >> 1);
  }
  std::fill(doorkeeper_.begin(), doorkeeper_.end(), 0);
  sampled_ = 0;
  ++resets_;
}

}  // namespace malsched::service
