#include "malsched/service/canonical.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <tuple>

#include "malsched/support/contracts.hpp"
#include "malsched/support/rng.hpp"

namespace malsched::service {

namespace {

std::uint64_t mix(std::uint64_t state, double value) {
  // Normalize -0.0 so the two zero encodings share a key.
  const double d = value == 0.0 ? 0.0 : value;
  std::uint64_t s = state ^ std::bit_cast<std::uint64_t>(d);
  return support::splitmix64(s);
}

}  // namespace

double quantize_ratio(double value, double tol) {
  if (!std::isfinite(value) || value <= 0.0) {
    return value;
  }
  const double lo = value * (1.0 - tol);
  const double hi = value * (1.0 + tol);
  if (!(lo > 0.0) || !std::isfinite(hi)) {
    return value;
  }
  // Stern–Brocot / continued-fraction walk for the minimal-denominator
  // rational in [lo, hi]: peel integer parts until an integer falls inside
  // the (inverted) residual interval, accumulating convergents p/q.  The
  // endpoints are doubles, i.e. exact rationals m·2^(e−53), so the whole
  // walk runs in exact 128-bit integer arithmetic — the answer depends only
  // on which rationals the window contains, never on rounding, which is
  // what makes ulp-separated twins of one real ratio snap to the same
  // value.  (A double-precision walk loses this at deep CF levels.)
  __extension__ using Wide = __int128;
  const auto decompose = [](double d, Wide& num, Wide& den) {
    int exp = 0;
    const double fraction = std::frexp(d, &exp);  // d = fraction * 2^exp
    // |exp| > 60 would push the exact fractions toward the 128-bit limit;
    // such extreme ratios just skip quantization (a missed dedup, nothing
    // more).
    if (exp > 60 || exp < -60) {
      return false;
    }
    num = static_cast<Wide>(std::ldexp(fraction, 53));  // 53-bit integer
    den = 1;
    const int shift = exp - 53;
    if (shift >= 0) {
      num <<= shift;
    } else {
      den <<= -shift;
    }
    return true;
  };
  Wide lo_n = 0, lo_d = 1, hi_n = 0, hi_d = 1;
  if (!decompose(lo, lo_n, lo_d) || !decompose(hi, hi_n, hi_d)) {
    return value;
  }
  constexpr Wide kMaxDenominator = Wide{1} << 26;
  constexpr Wide kMaxNumerator = Wide{1} << 53;
  Wide p_prev = 1, q_prev = 0;  // convergent p_{-1}/q_{-1}
  Wide p_prev2 = 0, q_prev2 = 1;
  while (true) {
    const Wide a_floor = lo_n / lo_d;
    const Wide a_ceil = a_floor + (lo_n % lo_d != 0 ? 1 : 0);
    // Terminal level: an integer lies in the residual interval, and the
    // smallest such integer finishes the minimal-denominator fraction.
    const bool terminal = a_ceil * hi_d <= hi_n;
    const Wide a = terminal ? a_ceil : a_floor;
    const Wide p = a * p_prev + p_prev2;
    const Wide q = a * q_prev + q_prev2;
    if (q > kMaxDenominator || p > kMaxNumerator) {
      return value;
    }
    if (terminal) {
      return static_cast<double>(static_cast<std::int64_t>(p)) /
             static_cast<double>(static_cast<std::int64_t>(q));
    }
    p_prev2 = p_prev;
    q_prev2 = q_prev;
    p_prev = p;
    q_prev = q;
    // Invert the residual interval: [1/(hi−a), 1/(lo−a)], exactly.  The
    // new components are Euclidean remainders of the old, so magnitudes
    // only shrink and no product here can overflow 128 bits.
    const Wide next_lo_n = hi_d;
    const Wide next_lo_d = hi_n - a * hi_d;
    const Wide next_hi_n = lo_d;
    const Wide next_hi_d = lo_n - a * lo_d;
    lo_n = next_lo_n;
    lo_d = next_lo_d;
    hi_n = next_hi_n;
    hi_d = next_hi_d;
  }
}

CanonicalForm canonicalize(const core::Instance& instance,
                           const CanonicalOptions& options) {
  const std::size_t n = instance.size();
  const double p = instance.processors();
  const double total_v = instance.total_volume();
  const double total_w = instance.total_weight();
  const double v = total_v > 0.0 ? total_v : 1.0;
  const double w = total_w > 0.0 ? total_w : 1.0;

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  std::vector<core::Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].volume = instance.task(i).volume / v;
    tasks[i].width = instance.task(i).width / p;
    tasks[i].weight = instance.task(i).weight / w;
    if (options.quantize) {
      // Rebuild the canonical values from the snapped rationals: every
      // member of the equivalence class then solves the *same* canonical
      // instance, which is what makes a hit byte-identical to a fresh solve.
      tasks[i].volume = quantize_ratio(tasks[i].volume);
      tasks[i].width = quantize_ratio(tasks[i].width);
      tasks[i].weight = quantize_ratio(tasks[i].weight);
    }
  }
  if (options.permute) {
    std::stable_sort(perm.begin(), perm.end(),
                     [&tasks](std::size_t a, std::size_t b) {
                       return std::tie(tasks[a].volume, tasks[a].width,
                                       tasks[a].weight) <
                              std::tie(tasks[b].volume, tasks[b].width,
                                       tasks[b].weight);
                     });
    std::vector<core::Task> sorted(n);
    for (std::size_t j = 0; j < n; ++j) {
      sorted[j] = tasks[perm[j]];
    }
    tasks = std::move(sorted);
  }

  // The scales stay request-exact (not quantized): results must map back to
  // the client's own units, and the scales never enter the cache key.
  CanonicalForm form{core::Instance(1.0, std::move(tasks)), std::move(perm),
                     /*time_scale=*/v / p, /*objective_scale=*/w * (v / p), 0};

  std::uint64_t key = 0x243f6a8885a308d3ULL ^ static_cast<std::uint64_t>(n);
  for (const core::Task& t : form.instance.tasks()) {
    key = mix(key, t.volume);
    key = mix(key, t.width);
    key = mix(key, t.weight);
  }
  form.key = key;
  return form;
}

std::string canonical_text(const CanonicalForm& form) {
  // %a round-trips doubles exactly and compactly; the text is a cache map
  // key, not meant for humans (io.hpp serves that purpose).
  std::string text;
  text.reserve(16 + form.instance.size() * 48);
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "n=%zu", form.instance.size());
  text += buffer;
  // Same -0.0 normalization as the hash mix, so the two zero encodings
  // share the exact key too.
  const auto norm = [](double d) { return d == 0.0 ? 0.0 : d; };
  for (const core::Task& t : form.instance.tasks()) {
    std::snprintf(buffer, sizeof buffer, ";%a,%a,%a", norm(t.volume),
                  norm(t.width), norm(t.weight));
    text += buffer;
  }
  return text;
}

bool well_conditioned(const CanonicalForm& form) {
  // Overflowed sums (total volume = inf) make the scales non-finite and
  // the canonical values 0/NaN; comparisons below would all be false for
  // NaN, so check finiteness explicitly first.
  if (!std::isfinite(form.time_scale) || !std::isfinite(form.objective_scale)) {
    return false;
  }
  // Three orders of magnitude above the engine/validator absolute
  // tolerance of 1e-9: below this, rescaled volumes get snapped to
  // "finished" and rescaled rates to "no progress".
  constexpr double kMinScale = 1e-6;
  for (const core::Task& t : form.instance.tasks()) {
    if (!std::isfinite(t.volume) || !std::isfinite(t.width) ||
        !std::isfinite(t.weight)) {
      return false;
    }
    if (t.volume > 0.0 && t.volume < kMinScale) {
      return false;
    }
    if (t.width < kMinScale) {
      return false;
    }
  }
  return true;
}

std::vector<double> denormalize_completions(
    const CanonicalForm& form, std::span<const double> canonical_completions) {
  MALSCHED_EXPECTS(canonical_completions.size() == form.permutation.size());
  std::vector<double> completions(canonical_completions.size(), 0.0);
  for (std::size_t j = 0; j < canonical_completions.size(); ++j) {
    completions[form.permutation[j]] =
        form.time_scale * canonical_completions[j];
  }
  return completions;
}

}  // namespace malsched::service
