#include "malsched/service/canonical.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <tuple>

#include "malsched/support/contracts.hpp"
#include "malsched/support/rng.hpp"

namespace malsched::service {

namespace {

std::uint64_t mix(std::uint64_t state, double value) {
  // Normalize -0.0 so the two zero encodings share a key.
  const double d = value == 0.0 ? 0.0 : value;
  std::uint64_t s = state ^ std::bit_cast<std::uint64_t>(d);
  return support::splitmix64(s);
}

}  // namespace

CanonicalForm canonicalize(const core::Instance& instance,
                           const CanonicalOptions& options) {
  const std::size_t n = instance.size();
  const double p = instance.processors();
  const double total_v = instance.total_volume();
  const double total_w = instance.total_weight();
  const double v = total_v > 0.0 ? total_v : 1.0;
  const double w = total_w > 0.0 ? total_w : 1.0;

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  std::vector<core::Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].volume = instance.task(i).volume / v;
    tasks[i].width = instance.task(i).width / p;
    tasks[i].weight = instance.task(i).weight / w;
  }
  if (options.permute) {
    std::stable_sort(perm.begin(), perm.end(),
                     [&tasks](std::size_t a, std::size_t b) {
                       return std::tie(tasks[a].volume, tasks[a].width,
                                       tasks[a].weight) <
                              std::tie(tasks[b].volume, tasks[b].width,
                                       tasks[b].weight);
                     });
    std::vector<core::Task> sorted(n);
    for (std::size_t j = 0; j < n; ++j) {
      sorted[j] = tasks[perm[j]];
    }
    tasks = std::move(sorted);
  }

  CanonicalForm form{core::Instance(1.0, std::move(tasks)), std::move(perm),
                     /*time_scale=*/v / p, /*objective_scale=*/w * (v / p), 0};

  std::uint64_t key = 0x243f6a8885a308d3ULL ^ static_cast<std::uint64_t>(n);
  for (const core::Task& t : form.instance.tasks()) {
    key = mix(key, t.volume);
    key = mix(key, t.width);
    key = mix(key, t.weight);
  }
  form.key = key;
  return form;
}

std::string canonical_text(const CanonicalForm& form) {
  // %a round-trips doubles exactly and compactly; the text is a cache map
  // key, not meant for humans (io.hpp serves that purpose).
  std::string text;
  text.reserve(16 + form.instance.size() * 48);
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "n=%zu", form.instance.size());
  text += buffer;
  // Same -0.0 normalization as the hash mix, so the two zero encodings
  // share the exact key too.
  const auto norm = [](double d) { return d == 0.0 ? 0.0 : d; };
  for (const core::Task& t : form.instance.tasks()) {
    std::snprintf(buffer, sizeof buffer, ";%a,%a,%a", norm(t.volume),
                  norm(t.width), norm(t.weight));
    text += buffer;
  }
  return text;
}

bool well_conditioned(const CanonicalForm& form) {
  // Overflowed sums (total volume = inf) make the scales non-finite and
  // the canonical values 0/NaN; comparisons below would all be false for
  // NaN, so check finiteness explicitly first.
  if (!std::isfinite(form.time_scale) || !std::isfinite(form.objective_scale)) {
    return false;
  }
  // Three orders of magnitude above the engine/validator absolute
  // tolerance of 1e-9: below this, rescaled volumes get snapped to
  // "finished" and rescaled rates to "no progress".
  constexpr double kMinScale = 1e-6;
  for (const core::Task& t : form.instance.tasks()) {
    if (!std::isfinite(t.volume) || !std::isfinite(t.width) ||
        !std::isfinite(t.weight)) {
      return false;
    }
    if (t.volume > 0.0 && t.volume < kMinScale) {
      return false;
    }
    if (t.width < kMinScale) {
      return false;
    }
  }
  return true;
}

std::vector<double> denormalize_completions(
    const CanonicalForm& form, std::span<const double> canonical_completions) {
  MALSCHED_EXPECTS(canonical_completions.size() == form.permutation.size());
  std::vector<double> completions(canonical_completions.size(), 0.0);
  for (std::size_t j = 0; j < canonical_completions.size(); ++j) {
    completions[form.permutation[j]] =
        form.time_scale * canonical_completions[j];
  }
  return completions;
}

}  // namespace malsched::service
