#include "malsched/service/solver_registry.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "malsched/core/greedy.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/order_lp.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/sim/engine.hpp"
#include "malsched/sim/policy.hpp"

namespace malsched::service {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::UnknownSolver: return "unknown-solver";
    case ErrorCode::SizeGuard: return "size-guard";
    case ErrorCode::ParseError: return "parse-error";
    case ErrorCode::SolverFailure: return "solver-failure";
    case ErrorCode::QueueClosed: return "queue-closed";
    case ErrorCode::Cancelled: return "cancelled";
    case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::ProtocolMismatch: return "protocol-mismatch";
  }
  return "solver-failure";
}

std::optional<ErrorCode> parse_error_code(std::string_view name) noexcept {
  for (const ErrorCode code : kAllErrorCodes) {
    if (name == error_code_name(code)) {
      return code;
    }
  }
  return std::nullopt;
}

std::string SolveError::to_string() const {
  return std::string(error_code_name(code)) + ": " + detail;
}

std::string escape_result_text(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      default: escaped += c; break;
    }
  }
  return escaped;
}

std::string unescape_result_text(const std::string& text) {
  std::string plain;
  plain.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      plain += text[i];
      continue;
    }
    ++i;
    switch (text[i]) {
      case 'n': plain += '\n'; break;
      case 'r': plain += '\r'; break;
      default: plain += text[i]; break;  // covers \" and backslash
    }
  }
  return plain;
}

namespace {

SolveResult ok_result(double objective, double makespan,
                      std::vector<double> completions) {
  return SolveResult::success(
      "", SolveOutput{objective, makespan, std::move(completions)});
}

SolveResult error_result(ErrorCode code, std::string message) {
  return SolveResult::failure("", code, std::move(message));
}

SolveResult solve_with_policy(const sim::AllocationPolicy& policy,
                              const core::Instance& instance,
                              const SolveContext& context) {
  sim::EngineOptions engine_options;
  engine_options.cancel = context.cancel;
  const auto run = sim::run_policy(instance, policy, engine_options);
  if (run.cancelled) {
    // A partial fluid trace is not an answer; surface the abort typed.  The
    // Scheduler reclassifies it to DeadlineExceeded when the deadline (not
    // an explicit cancel) fired the token.
    return error_result(ErrorCode::Cancelled,
                        "fluid engine aborted by its cancellation token "
                        "after " +
                            std::to_string(run.events) + " events");
  }
  return ok_result(run.weighted_completion, run.schedule.makespan(),
                   run.completions);
}

// WDEQ and WRR divide by task weights, and the library enforces that as a
// process-aborting contract (wdeq.cpp).  The service fronts untrusted client
// batches, so those solvers reject the input with an error result instead.
// Zero-volume tasks are never alive in the engine, so their weight is free.
std::optional<SolveResult> reject_nonpositive_weights(
    const core::Instance& instance, const std::string& solver) {
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (instance.task(i).volume > 0.0 && instance.task(i).weight <= 0.0) {
      return error_result(ErrorCode::SolverFailure,
                          "solver '" + solver +
                              "' requires positive weights (task " +
                              std::to_string(i) + " has weight " +
                              std::to_string(instance.task(i).weight) + ")");
    }
  }
  return std::nullopt;
}

// The fluid engine treats rates at or below its absolute tolerance (1e-9)
// as no progress, so a runnable task whose width is that small starves
// every rate-proportional policy and trips the engine's process-aborting
// safety valve.  Reject such input up front for all engine-backed solvers.
std::optional<SolveResult> reject_degenerate_widths(
    const core::Instance& instance, const std::string& solver) {
  constexpr double kMinWidth = 1e-9;  // support::Tolerance{}.abs
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (instance.task(i).volume > 0.0 && instance.task(i).width <= kMinWidth) {
      char message[128];
      std::snprintf(message, sizeof message,
                    "solver '%s' requires widths above %g (task %zu has "
                    "width %g)",
                    solver.c_str(), kMinWidth, i, instance.task(i).width);
      return error_result(ErrorCode::SolverFailure, message);
    }
  }
  return std::nullopt;
}

SolveResult solve_greedy_heuristic(const core::Instance& instance,
                                   const SolveContext& context) {
  const auto best = core::best_greedy_heuristic(instance, context.cancel);
  if (best.cancelled) {
    return error_result(ErrorCode::Cancelled,
                        "greedy order search aborted by its cancellation "
                        "token after trying " +
                            std::to_string(best.orders_tried) + " orders");
  }
  const auto schedule = core::greedy_schedule(instance, best.order);
  return ok_result(best.objective, schedule.makespan(),
                   schedule.completions());
}

SolveResult solve_water_fill_smith(const core::Instance& instance) {
  const auto order = core::smith_order(instance);
  const auto greedy = core::greedy_schedule(instance, order);
  const auto wf = core::normalize(instance, greedy);
  if (!wf.feasible) {
    return error_result(ErrorCode::SolverFailure,
                        "water-fill normalization infeasible at position " +
                            std::to_string(wf.failed_position));
  }
  return ok_result(wf.schedule.weighted_completion(instance),
                   wf.schedule.makespan(), wf.schedule.completions());
}

SolveResult solve_order_lp_smith(const core::Instance& instance) {
  const auto result = core::solve_order_lp(instance, core::smith_order(instance));
  if (!result.optimal()) {
    return error_result(ErrorCode::SolverFailure,
                        "order LP did not reach optimality");
  }
  return ok_result(result.objective, result.schedule.makespan(),
                   result.schedule.completions());
}

SolveResult solve_optimal(const core::Instance& instance,
                          const SolveContext& context) {
  // Branch-and-bound (PR 3) raised the exact-serving guard from the n <= 9
  // of the pure-enumeration era to n <= 15; the mean-busy-time cuts raised
  // it again to OptimalOptions' n <= 18 default.  Beyond it the typed
  // SizeGuard error stands.
  core::OptimalOptions options;
  options.want_schedule = true;
  options.cancel = context.cancel;
  if (instance.size() > options.max_tasks) {
    return error_result(ErrorCode::SizeGuard,
                        "optimal solver limited to n <= " +
                            std::to_string(options.max_tasks) + " (got n = " +
                            std::to_string(instance.size()) + ")");
  }
  const auto opt = core::optimal_by_enumeration(instance, options);
  if (opt.cancelled) {
    // The Scheduler reclassifies this to DeadlineExceeded when the token
    // fired on the deadline rather than an explicit Ticket::cancel().
    return error_result(ErrorCode::Cancelled,
                        "optimal solve aborted by its cancellation token "
                        "after trying " +
                            std::to_string(opt.orders_tried) +
                            " completion orders");
  }
  return ok_result(opt.objective, opt.schedule.makespan(),
                   opt.schedule.completions());
}

// Cost hints for the priority admission queue: estimated solve seconds as a
// function of n.  Deliberately coarse — admission ordering only needs the
// magnitudes right (exponential exact search ≫ simplex-backed orders ≫
// fluid policies), and Scheduler::Options::aging_factor bounds the damage
// of any misestimate.
double fluid_policy_cost(std::size_t n) {
  const auto x = static_cast<double>(n);
  return 2e-7 * x * x + 2e-5;  // 4n+16 events, O(n) work per event
}

double simplex_order_cost(std::size_t n) {
  const auto x = static_cast<double>(n);
  return 1e-7 * x * x * x + 5e-5;  // one dense order LP, ~O(n^3) pivoting
}

double greedy_search_cost(std::size_t n) {
  const auto x = static_cast<double>(n);
  return 1e-8 * x * x * x * x + 5e-5;  // seeds + local search over schedules
}

double optimal_cost(std::size_t n) {
  // Below the crossover: n! order-LP solves.  Above: branch-and-bound —
  // pruning makes the truth instance-dependent, so charge the n·2^n subset
  // flavour that tracks the measured n = 8..18 envelope.
  const auto x = static_cast<double>(n);
  double lp_count = 1.0;
  if (n <= 7) {
    for (std::size_t i = 2; i <= n; ++i) {
      lp_count *= static_cast<double>(i);
    }
  } else {
    lp_count = x * std::pow(2.0, x);
  }
  return 2e-4 * lp_count + 1e-4;
}

}  // namespace

void SolverRegistry::register_solver(std::string name, SolverFn fn,
                                     bool order_invariant,
                                     std::string description, bool cacheable) {
  SolverInfo info;
  info.fn = [plain = std::move(fn)](const core::Instance& instance,
                                    const SolveContext&) {
    return plain(instance);  // plain solvers never see the context
  };
  info.order_invariant = order_invariant;
  info.description = std::move(description);
  info.cacheable = cacheable;
  register_solver(std::move(name), std::move(info));
}

void SolverRegistry::register_solver(std::string name, SolverInfo info) {
  solvers_[std::move(name)] = std::move(info);
}

bool SolverRegistry::contains(const std::string& name) const {
  return solvers_.count(name) != 0;
}

const SolverRegistry::SolverInfo* SolverRegistry::find(
    const std::string& name) const {
  const auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : &it->second;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const auto& [name, info] : solvers_) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

SolveResult SolverRegistry::solve(const std::string& solver,
                                  const core::Instance& instance,
                                  const SolveContext& context) const {
  const SolverInfo* info = find(solver);
  SolveResult result;
  if (info == nullptr) {
    result = error_result(ErrorCode::UnknownSolver,
                          "unknown solver '" + solver + "'");
  } else if (instance.size() == 0) {
    result = ok_result(0.0, 0.0, {});
  } else {
    result = info->fn(instance, context);
  }
  result.solver = solver;
  return result;
}

double SolverRegistry::estimated_seconds(const std::string& solver,
                                         std::size_t n) const {
  const SolverInfo* info = find(solver);
  if (info != nullptr && info->cost_hint) {
    return info->cost_hint(n);
  }
  // Unhinted/unknown solvers get a mid-pack polynomial default so they are
  // neither starved behind real work nor allowed to starve it.
  const auto x = static_cast<double>(n);
  return 1e-7 * x * x + 1e-4;
}

SolverRegistry SolverRegistry::with_default_solvers() {
  SolverRegistry registry;
  for (auto& policy : sim::all_policies()) {
    // Permutation-equivariant solvers only: wdeq/deq/wrr allocate purely by
    // (w, δ, V).  fifo-rigid serves tasks in id order, and smith-greedy
    // breaks Smith-ratio ties by id, so renumbering (which the cache's
    // canonical sort does) can flip tied schedules for them.
    const bool order_invariant = policy->name() == "wdeq" ||
                                 policy->name() == "deq" ||
                                 policy->name() == "wrr";
    const bool weight_sharing =
        policy->name() == "wdeq" || policy->name() == "wrr";
    std::shared_ptr<const sim::AllocationPolicy> shared = std::move(policy);
    SolverInfo info;
    info.fn = [shared, weight_sharing](const core::Instance& instance,
                                       const SolveContext& context) {
      if (auto rejected = reject_degenerate_widths(instance, shared->name())) {
        return *std::move(rejected);
      }
      if (weight_sharing) {
        if (auto rejected =
                reject_nonpositive_weights(instance, shared->name())) {
          return *std::move(rejected);
        }
      }
      return solve_with_policy(*shared, instance, context);
    };
    info.order_invariant = order_invariant;
    info.description = "fluid-engine policy " + shared->name();
    info.cancellable = true;  // the engine polls the token once per event
    info.cost_hint = fluid_policy_cost;
    registry.register_solver(shared->name(), std::move(info));
  }
  // The order-based solvers all tie-break by task id (smith_order uses
  // stable_sort, enumeration returns the first optimal order found), so
  // their completions are not permutation-equivariant: scale-only caching.
  const auto register_plain = [&registry](const char* name, SolveResult (*fn)(const core::Instance&),
                                          const char* description,
                                          CostHintFn cost) {
    SolverInfo info;
    info.fn = [fn](const core::Instance& instance, const SolveContext&) {
      return fn(instance);
    };
    info.description = description;
    info.cost_hint = std::move(cost);
    registry.register_solver(name, std::move(info));
  };
  {
    SolverInfo info;
    info.fn = solve_greedy_heuristic;
    info.description = "best greedy order over priority seeds + local search";
    info.cancellable = true;  // the order search polls per candidate
    info.cost_hint = greedy_search_cost;
    registry.register_solver("greedy-heuristic", std::move(info));
  }
  register_plain("water-fill-smith", solve_water_fill_smith,
                 "Smith-order greedy normalized by Algorithm WF",
                 simplex_order_cost);
  register_plain("order-lp-smith", solve_order_lp_smith,
                 "Corollary-1 LP on the Smith completion order",
                 simplex_order_cost);
  {
    SolverInfo info;
    info.fn = solve_optimal;
    info.description =
        "exact optimum: n! enumeration for tiny n, branch-and-bound with "
        "mean-busy-time cuts over completion orders beyond (guard n <= 18)";
    info.cancellable = true;
    info.cost_hint = optimal_cost;
    registry.register_solver("optimal", std::move(info));
  }
  return registry;
}

}  // namespace malsched::service
