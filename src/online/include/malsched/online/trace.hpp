#pragma once

/// \file trace.hpp
/// Online arrival traces: the workload of the open (online) MWCT scenario.
///
/// A trace is a processor count plus a time-sorted list of arrivals, each
/// carrying one malleable task (V, δ, w).  Traces are either replayed from a
/// plain-text file or synthesized by the generator families below; the
/// replay clock (clock.hpp) feeds them to a ReplanPolicy and the baseline
/// (baseline.hpp) prices the clairvoyant offline optimum for the same jobs.
///
/// Text format (line-oriented, '#' comments, mirroring core/io.hpp):
///
///     processors 4
///     arrive <time> <volume> <width> <weight>
///     arrive <time> <volume> <width> <weight>
///     ...
///
/// Arrival times must be finite, non-negative and non-decreasing (the file
/// is the event log; keeping it sorted keeps replay single-pass and diffs
/// meaningful).

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/support/rng.hpp"

namespace malsched::online {

/// One arrival event: a task becoming visible at `time`.
struct Arrival {
  double time = 0.0;
  core::Task task;
};

/// A validated, time-sorted arrival trace.
class ArrivalTrace {
 public:
  ArrivalTrace() : processors_(1.0) {}
  /// Validates: P > 0, times finite/non-negative/non-decreasing, and every
  /// task passing the Instance invariants (V >= 0, δ > 0, w >= 0).
  ArrivalTrace(double processors, std::vector<Arrival> arrivals);

  [[nodiscard]] double processors() const noexcept { return processors_; }
  [[nodiscard]] std::size_t size() const noexcept { return arrivals_.size(); }
  [[nodiscard]] bool empty() const noexcept { return arrivals_.empty(); }
  [[nodiscard]] const Arrival& arrival(std::size_t i) const {
    return arrivals_[i];
  }
  [[nodiscard]] const std::vector<Arrival>& arrivals() const noexcept {
    return arrivals_;
  }

  /// The closed-batch view: all tasks in arrival order (ties keep file
  /// order), release times dropped.  This is what the batch `generate`
  /// grammar serves when a trace family is requested.
  [[nodiscard]] core::Instance to_instance() const;

  /// Release dates indexed like to_instance()'s tasks.
  [[nodiscard]] std::vector<double> release_dates() const;

  /// True when every arrival happens at t = 0 (the degenerate trace that
  /// must collapse to the offline problem).
  [[nodiscard]] bool all_at_time_zero() const noexcept;

  /// Human-readable one-line description for logs.
  [[nodiscard]] std::string describe() const;

 private:
  double processors_;
  std::vector<Arrival> arrivals_;
};

/// --- text serialization ---

[[nodiscard]] std::optional<ArrivalTrace> read_trace(
    std::istream& in, std::string* error = nullptr);
[[nodiscard]] std::optional<ArrivalTrace> parse_trace(
    const std::string& text, std::string* error = nullptr);
void write_trace(std::ostream& out, const ArrivalTrace& trace);
[[nodiscard]] std::string format_trace(const ArrivalTrace& trace);

/// --- synthesized trace families ---

/// The three arrival processes the online bench tracks (ROADMAP: "Poisson
/// bursts, diurnal load, adversarial spikes").  Each family fixes both the
/// arrival process and the task marginals, so one (family, n, P, seed)
/// tuple pins the whole trace.
enum class TraceFamily {
  PoissonBursts,     ///< bursty Poisson: exp. gaps between bursts, geometric
                     ///< burst sizes, §V-uniform tasks
  Diurnal,           ///< sinusoidal day/night arrival intensity
  AdversarialSpike,  ///< light trickle, then a synchronized heavy-wide spike
};

[[nodiscard]] const char* trace_family_name(TraceFamily family) noexcept;
[[nodiscard]] std::optional<TraceFamily> trace_family_from_name(
    const std::string& name);
[[nodiscard]] std::vector<TraceFamily> all_trace_families();

struct TraceConfig {
  TraceFamily family = TraceFamily::PoissonBursts;
  std::size_t num_tasks = 20;
  double processors = 4.0;
  /// Arrival-time scale: expected span of the arrival process.  The default
  /// loads the machine (arrivals overlap executions) without degenerating
  /// into either the closed batch (horizon 0) or isolated jobs.
  double horizon = 4.0;
};

/// Draws one trace.  Deterministic in (config, rng seed) — the golden-hash
/// tests pin the streams.
[[nodiscard]] ArrivalTrace generate_trace(const TraceConfig& config,
                                          support::Rng& rng);

}  // namespace malsched::online
