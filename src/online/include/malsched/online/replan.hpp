#pragma once

/// \file replan.hpp
/// Replanning policies for online arrivals.
///
/// The replay clock (clock.hpp) freezes everything executed before the
/// current event as released work (core/release_dates frozen-prefix
/// semantics: work-preserving malleability makes executed volume the whole
/// state) and asks a ReplanPolicy for a fresh *suffix plan* over the live
/// tasks' remaining volumes.  Policies differ in how much of the running
/// plan they are willing to tear up:
///
/// * greedy-append — never preempts: each arrival is greedily placed
///   (Algorithm 3 placement, starting at its arrival time) on top of the
///   allocations already promised to earlier arrivals.  The cheap,
///   commitment-friendly strawman.
/// * wsew-replan — full preemptive re-plan: live tasks are re-ordered by
///   weighted-shortest-estimated-work (w_i / remaining_i, the admission
///   ordering of the service layer) and the suffix is rebuilt as the greedy
///   schedule of that order, normalized by Water-Filling (Algorithm 2) into
///   the paper's column normal form.
/// * wdeq-replan — equipartition re-plan: the suffix is a fresh WDEQ run
///   (Algorithm 1) over the remaining subinstance.  Non-clairvoyant in
///   spirit; inherits Theorem 4's 2-approximation on the t = 0 trace.
/// * exact-replan — calls the branch-and-bound exact solver on the live
///   remaining subinstance when it is small enough, under a CancelToken
///   time budget (a fired budget still yields the B&B incumbent, a valid
///   plan); falls back to the WSEW re-plan beyond the size guard.  On the
///   all-arrivals-at-t=0 trace this reproduces the offline optimum
///   bit-for-bit (CI-gated).
///
/// Policies may be stateful across events of ONE replay (greedy-append
/// keeps its committed profile); create a fresh policy per replay.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "malsched/core/cancel.hpp"
#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::online {

/// Snapshot handed to a policy at each replan point.  `instance` spans every
/// task of the trace (arrival order); `remaining` is the unexecuted volume;
/// `live[i]` is 1 exactly when task i has arrived and still has work left.
/// Tasks not yet arrived have remaining == full volume but live == 0 — a
/// policy must plan only for live tasks (the clock validates this).
struct ReplanContext {
  double now = 0.0;
  const core::Instance* instance = nullptr;
  std::span<const double> remaining;
  std::span<const std::uint8_t> live;
  core::CancelToken cancel;
};

/// A replanning policy: returns the suffix plan for the live tasks.  The
/// returned StepSchedule must start at ctx.now, be contiguous, respect rate
/// caps, and process exactly the remaining volume of every live task (and
/// nothing for anyone else).
class ReplanPolicy {
 public:
  virtual ~ReplanPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True when the policy wants to be re-invoked at completion events too
  /// (arrival events always replan).  Policies whose plan is already final
  /// for the live set — greedy-append's committed pieces, exact-replan's
  /// optimal suffix — return false, which both saves work and keeps their
  /// executed schedule bit-stable.
  [[nodiscard]] virtual bool replan_on_completion() const { return true; }

  [[nodiscard]] virtual core::StepSchedule replan(
      const ReplanContext& context) = 0;
};

/// No-preempt greedy append (see file comment).
[[nodiscard]] std::unique_ptr<ReplanPolicy> make_greedy_append_policy();

/// Full WSEW re-plan via greedy + Water-Filling normal form.
[[nodiscard]] std::unique_ptr<ReplanPolicy> make_wsew_replan_policy();

/// Equipartition re-plan: fresh WDEQ run over the remaining subinstance.
[[nodiscard]] std::unique_ptr<ReplanPolicy> make_wdeq_replan_policy();

struct ExactReplanOptions {
  /// Live-set size beyond which the policy falls back to the WSEW re-plan
  /// (branch-and-bound is exponential; see core/bnb.hpp).
  std::size_t max_exact_tasks = 12;
  /// Wall-clock budget per replan, enforced with a deadline CancelToken; a
  /// fired budget keeps the B&B incumbent (a feasible order), so the plan
  /// degrades gracefully instead of stalling the clock.  <= 0 disables the
  /// budget.
  double budget_seconds = 0.25;
};

/// Exact re-plan: branch-and-bound on small live sets, WSEW beyond.
[[nodiscard]] std::unique_ptr<ReplanPolicy> make_exact_replan_policy(
    const ExactReplanOptions& options = {});

/// All four policies, fresh instances, for comparison sweeps (bench/CLI).
[[nodiscard]] std::vector<std::unique_ptr<ReplanPolicy>> all_replan_policies();

}  // namespace malsched::online
