#pragma once

/// \file clock.hpp
/// Event-driven replay of an arrival trace under a replanning policy.
///
/// The clock advances from event to event (arrivals and completions).  At
/// each replan point it hands the policy a snapshot of the live tasks'
/// remaining volumes (replan.hpp) and then *executes* the returned suffix
/// plan until the next event: the executed prefix is frozen — released work
/// in the core/release_dates sense — and only the suffix is ever re-solved.
/// Work never runs before its task arrives, and a task completes the instant
/// its remaining volume hits zero (completion crossings are snapped to plan
/// step boundaries so an exact plan's completion times survive the replay
/// bit-for-bit — the all-arrivals-at-t=0 gate depends on this).
///
/// Zero-volume tasks complete at their arrival instant (the online analogue
/// of StepSchedule::completions' zero-volume convention at t = 0).

#include <cstddef>
#include <vector>

#include "malsched/core/cancel.hpp"
#include "malsched/core/schedule.hpp"
#include "malsched/online/replan.hpp"
#include "malsched/online/trace.hpp"
#include "malsched/support/float_compare.hpp"

namespace malsched::online {

struct ReplayOptions {
  /// Forwarded to the policy at every replan (exact-replan budgets ride on
  /// top of it).  A fired token does not abort the replay — plans already
  /// returned keep executing — it bounds the per-replan solve time.
  core::CancelToken cancel;
  support::Tolerance tol = {};
};

struct ReplayResult {
  /// The executed schedule, contiguous from t = 0 (idle steps fill arrival
  /// gaps).  Validates against the trace's batch instance.
  core::StepSchedule schedule;
  /// Completion time per task (trace order); arrival time for zero-volume
  /// tasks.
  std::vector<double> completions;
  /// Σ w_i C_i, summed in task-index order (the same summation
  /// ColumnSchedule::weighted_completion uses, so bit-for-bit comparisons
  /// against offline schedules are meaningful).
  double weighted_completion = 0.0;
  double makespan = 0.0;
  std::size_t events = 0;   ///< arrivals + completions processed
  std::size_t replans = 0;  ///< policy invocations
};

/// Replays `trace` under `policy`.  The policy must be fresh (stateful
/// policies carry commitments across events of one replay only).
[[nodiscard]] ReplayResult replay(const ArrivalTrace& trace,
                                  ReplanPolicy& policy,
                                  const ReplayOptions& options = {});

}  // namespace malsched::online
