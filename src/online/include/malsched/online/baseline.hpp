#pragma once

/// \file baseline.hpp
/// Clairvoyant offline reference values for competitive-ratio reporting.
///
/// The empirical competitive ratio of a policy on a trace is
/// replay ΣwC / baseline.  The baseline is the offline optimum when we can
/// afford to compute it (branch-and-bound, n <= max_exact_tasks, all
/// arrivals at t = 0) and a *lower bound* otherwise — ratios against a lower
/// bound are conservative (an upper bound on the true competitive ratio),
/// which is the safe direction for a CI gate.  `exact` says which one you
/// got; `method` names the computation for the bench report.

#include <cstddef>
#include <string>

#include "malsched/core/cancel.hpp"
#include "malsched/online/trace.hpp"

namespace malsched::online {

struct BaselineOptions {
  /// Traces with at most this many tasks get the branch-and-bound treatment
  /// (must stay within core::BnbOptions::max_tasks).
  std::size_t max_exact_tasks = 15;
  /// Forwarded to branch-and-bound.  A fired token downgrades the result to
  /// a lower bound (the incumbent is an upper bound, unusable as a ratio
  /// denominator).
  core::CancelToken cancel;
};

struct BaselineResult {
  /// Reference ΣwC.  When `exact`, the offline optimum, computed through the
  /// same schedule summation the replay uses (bit-for-bit comparable);
  /// otherwise a valid lower bound on it.
  double objective = 0.0;
  bool exact = false;
  /// "bnb" | "bnb+release-lb" | "release-lb".
  std::string method;
};

/// Prices the clairvoyant offline scheduler on `trace`'s jobs.  Release
/// dates are honored as lower-bound terms: dropping them (plain B&B) relaxes
/// the problem, so max(B&B, released bound) is a valid lower bound on the
/// release-respecting offline optimum — and equals the exact optimum when
/// every arrival is at t = 0.
[[nodiscard]] BaselineResult offline_baseline(const ArrivalTrace& trace,
                                              const BaselineOptions& options = {});

}  // namespace malsched::online
