#include "malsched/online/baseline.hpp"

#include <algorithm>

#include "malsched/core/bnb.hpp"
#include "malsched/core/release_dates.hpp"

namespace malsched::online {

BaselineResult offline_baseline(const ArrivalTrace& trace,
                                const BaselineOptions& options) {
  BaselineResult result;
  const core::Instance instance = trace.to_instance();
  if (instance.size() == 0) {
    result.exact = true;
    result.method = "empty";
    return result;
  }
  const std::vector<double> release = trace.release_dates();
  const double release_lb =
      core::released_weighted_completion_lower_bound(instance, release);

  if (instance.size() <= options.max_exact_tasks) {
    core::BnbOptions bnb;
    bnb.want_schedule = true;
    bnb.cancel = options.cancel;
    const auto solved = core::branch_and_bound(instance, bnb);
    if (!solved.cancelled) {
      // The schedule-derived objective (not the LP scalar) so exact
      // comparisons against a replayed exact plan are bit-for-bit.
      const double optimum = solved.schedule.weighted_completion(instance);
      if (trace.all_at_time_zero()) {
        result.objective = optimum;
        result.exact = true;
        result.method = "bnb";
        return result;
      }
      result.objective = std::max(optimum, release_lb);
      result.method = "bnb+release-lb";
      return result;
    }
  }
  result.objective = release_lb;
  result.method = "release-lb";
  return result;
}

}  // namespace malsched::online
