#include "malsched/online/trace.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "malsched/support/contracts.hpp"

namespace malsched::online {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

}  // namespace

ArrivalTrace::ArrivalTrace(double processors, std::vector<Arrival> arrivals)
    : processors_(processors), arrivals_(std::move(arrivals)) {
  MALSCHED_EXPECTS(processors_ > 0.0);
  double prev = 0.0;
  for (const Arrival& a : arrivals_) {
    MALSCHED_EXPECTS(std::isfinite(a.time) && a.time >= 0.0);
    MALSCHED_EXPECTS_MSG(a.time >= prev,
                         "arrival times must be non-decreasing");
    prev = a.time;
    MALSCHED_EXPECTS(a.task.volume >= 0.0);
    MALSCHED_EXPECTS(a.task.width > 0.0);
    MALSCHED_EXPECTS(a.task.weight >= 0.0);
  }
}

core::Instance ArrivalTrace::to_instance() const {
  std::vector<core::Task> tasks;
  tasks.reserve(arrivals_.size());
  for (const Arrival& a : arrivals_) {
    tasks.push_back(a.task);
  }
  return core::Instance(processors_, std::move(tasks));
}

std::vector<double> ArrivalTrace::release_dates() const {
  std::vector<double> release;
  release.reserve(arrivals_.size());
  for (const Arrival& a : arrivals_) {
    release.push_back(a.time);
  }
  return release;
}

bool ArrivalTrace::all_at_time_zero() const noexcept {
  return arrivals_.empty() || arrivals_.back().time == 0.0;
}

std::string ArrivalTrace::describe() const {
  std::ostringstream out;
  out << "trace{P=" << processors_ << ", n=" << arrivals_.size();
  if (!arrivals_.empty()) {
    out << ", span=[" << arrivals_.front().time << ", "
        << arrivals_.back().time << "]";
  }
  out << "}";
  return out.str();
}

std::optional<ArrivalTrace> read_trace(std::istream& in, std::string* error) {
  double processors = 0.0;
  bool have_processors = false;
  std::vector<Arrival> arrivals;

  std::string line;
  std::size_t line_no = 0;
  double prev_time = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) {
      continue;  // blank/comment line
    }
    if (keyword == "processors") {
      if (!(fields >> processors) || !std::isfinite(processors) ||
          processors <= 0.0) {
        set_error(error, "line " + std::to_string(line_no) +
                             ": invalid processors value");
        return std::nullopt;
      }
      have_processors = true;
    } else if (keyword == "arrive") {
      Arrival a;
      if (!(fields >> a.time >> a.task.volume >> a.task.width >>
            a.task.weight) ||
          !std::isfinite(a.time) || a.time < 0.0 || a.task.volume < 0.0 ||
          a.task.width <= 0.0 || a.task.weight < 0.0) {
        set_error(error, "line " + std::to_string(line_no) +
                             ": invalid arrive line (want: arrive <time> "
                             "<volume> <width> <weight>)");
        return std::nullopt;
      }
      if (a.time < prev_time) {
        set_error(error, "line " + std::to_string(line_no) +
                             ": arrival times must be non-decreasing");
        return std::nullopt;
      }
      prev_time = a.time;
      arrivals.push_back(a);
    } else {
      set_error(error, "line " + std::to_string(line_no) +
                           ": unknown keyword '" + keyword + "'");
      return std::nullopt;
    }
  }
  if (!have_processors) {
    set_error(error, "missing 'processors' line");
    return std::nullopt;
  }
  if (arrivals.empty()) {
    set_error(error, "trace has no arrivals");
    return std::nullopt;
  }
  return ArrivalTrace(processors, std::move(arrivals));
}

std::optional<ArrivalTrace> parse_trace(const std::string& text,
                                        std::string* error) {
  std::istringstream in(text);
  return read_trace(in, error);
}

void write_trace(std::ostream& out, const ArrivalTrace& trace) {
  out << "# malsched arrival trace: n=" << trace.size() << "\n";
  out << "processors " << std::setprecision(17) << trace.processors() << "\n";
  for (const Arrival& a : trace.arrivals()) {
    out << "arrive " << std::setprecision(17) << a.time << " "
        << a.task.volume << " " << a.task.width << " " << a.task.weight
        << "\n";
  }
}

std::string format_trace(const ArrivalTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

const char* trace_family_name(TraceFamily family) noexcept {
  switch (family) {
    case TraceFamily::PoissonBursts:
      return "poisson-bursts";
    case TraceFamily::Diurnal:
      return "diurnal";
    case TraceFamily::AdversarialSpike:
      return "adversarial-spike";
  }
  return "?";
}

std::optional<TraceFamily> trace_family_from_name(const std::string& name) {
  for (const TraceFamily family : all_trace_families()) {
    if (name == trace_family_name(family)) {
      return family;
    }
  }
  return std::nullopt;
}

std::vector<TraceFamily> all_trace_families() {
  return {TraceFamily::PoissonBursts, TraceFamily::Diurnal,
          TraceFamily::AdversarialSpike};
}

namespace {

/// §V-uniform task draw: V, w ~ U(0,1], δ ~ U(0,P] — the same marginals the
/// batch `uniform` family uses, so online and batch experiments price
/// comparable work.
core::Task uniform_task(double processors, support::Rng& rng) {
  core::Task t;
  t.volume = rng.uniform_pos(1.0);
  t.width = rng.uniform_pos(processors);
  t.weight = rng.uniform_pos(1.0);
  return t;
}

ArrivalTrace make_sorted(double processors, std::vector<Arrival> arrivals) {
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.time < b.time;
                   });
  return ArrivalTrace(processors, std::move(arrivals));
}

}  // namespace

ArrivalTrace generate_trace(const TraceConfig& config, support::Rng& rng) {
  MALSCHED_EXPECTS(config.num_tasks > 0);
  MALSCHED_EXPECTS(config.processors > 0.0);
  MALSCHED_EXPECTS(config.horizon >= 0.0);
  const double P = config.processors;
  const std::size_t n = config.num_tasks;
  std::vector<Arrival> arrivals;
  arrivals.reserve(n);

  switch (config.family) {
    case TraceFamily::PoissonBursts: {
      // Bursts arrive with exponential gaps; each burst lands 1 + Geom(1/3)
      // jobs at the same instant.  The gap rate is sized so the expected
      // arrival span is ~horizon (mean burst size is 1.5, so expect
      // n / 1.5 bursts).
      const double expected_bursts =
          std::max(1.0, static_cast<double>(n) / 1.5);
      const double gap_rate =
          config.horizon > 0.0 ? expected_bursts / config.horizon : 0.0;
      double t = 0.0;
      while (arrivals.size() < n) {
        if (gap_rate > 0.0) {
          t += rng.exponential(gap_rate);
        }
        std::size_t burst = 1;
        while (arrivals.size() + burst < n && rng.bernoulli(1.0 / 3.0)) {
          ++burst;
        }
        for (std::size_t b = 0; b < burst && arrivals.size() < n; ++b) {
          arrivals.push_back({t, uniform_task(P, rng)});
        }
      }
      break;
    }
    case TraceFamily::Diurnal: {
      // One "day" of length horizon with sinusoidal intensity
      // λ(t) = 1 - sin(2πt/H): a trough ("night") at H/4 and a peak at
      // 3H/4.  Inverse-CDF sampling keeps it one rng draw per arrival:
      // Λ(t) = t - (1 - cos(2πt/H))·H/2π is monotone, so each uniform
      // target inverts by bisection; arrivals are then sorted.
      const double H = std::max(config.horizon, 1e-9);
      const auto cumulative = [H](double t) {
        const double w = 2.0 * 3.14159265358979323846 / H;
        return t - (std::sin(w * t - 1.5707963267948966) + 1.0) / w;
      };
      const double total = cumulative(H);
      for (std::size_t i = 0; i < n; ++i) {
        const double target = rng.uniform01() * total;
        double lo = 0.0, hi = H;
        for (int iter = 0; iter < 60; ++iter) {
          const double mid = 0.5 * (lo + hi);
          (cumulative(mid) < target ? lo : hi) = mid;
        }
        arrivals.push_back({0.5 * (lo + hi), uniform_task(P, rng)});
      }
      return make_sorted(P, std::move(arrivals));
    }
    case TraceFamily::AdversarialSpike: {
      // The anti-greedy workload: a trickle of light narrow jobs occupies
      // the machine, then at horizon/2 a synchronized spike of heavy, wide,
      // high-weight jobs lands.  A policy that cannot preempt the trickle
      // pays the spike's weight on every queued completion.
      const std::size_t trickle = std::max<std::size_t>(1, n / 4);
      const double spike_time = 0.5 * config.horizon;
      for (std::size_t i = 0; i < trickle; ++i) {
        core::Task t;
        t.volume = rng.uniform_pos(0.5);
        t.width = rng.uniform_pos(std::max(1.0, P / 8.0));
        t.weight = rng.uniform_pos(0.1);
        arrivals.push_back({rng.uniform(0.0, spike_time), t});
      }
      for (std::size_t i = trickle; i < n; ++i) {
        core::Task t;
        t.volume = 0.5 + rng.uniform_pos(1.0);
        t.width = P / 2.0 + rng.uniform_pos(P / 2.0);  // wide: δ > P/2
        t.weight = 0.5 + rng.uniform_pos(0.5);
        arrivals.push_back({spike_time, t});
      }
      return make_sorted(P, std::move(arrivals));
    }
  }
  return make_sorted(P, std::move(arrivals));
}

}  // namespace malsched::online
