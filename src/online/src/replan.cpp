#include "malsched/online/replan.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "malsched/core/bnb.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/core/wdeq.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::online {

namespace {

/// Compact view of the live tasks: a subinstance over remaining volumes
/// (original widths/weights, same P) plus the id mapping back to the trace.
struct LiveView {
  core::Instance sub;
  std::vector<std::size_t> ids;  ///< ids[k] = trace task id of sub task k
};

LiveView live_view(const ReplanContext& ctx) {
  std::vector<core::Task> tasks;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < ctx.instance->size(); ++i) {
    if (ctx.live[i] != 0) {
      core::Task t = ctx.instance->task(i);
      t.volume = ctx.remaining[i];
      tasks.push_back(t);
      ids.push_back(i);
    }
  }
  return LiveView{core::Instance(ctx.instance->processors(), std::move(tasks)),
                  std::move(ids)};
}

/// Shifts a compact plan (times from 0) to absolute time `now` and widens
/// its rate vectors back to the trace's task ids.
core::StepSchedule lift_plan(const core::StepSchedule& sub,
                             const std::vector<std::size_t>& ids,
                             std::size_t num_tasks, double now) {
  std::vector<core::Step> steps;
  steps.reserve(sub.steps().size());
  for (const core::Step& s : sub.steps()) {
    core::Step out;
    out.begin = now + s.begin;
    out.end = now + s.end;
    out.rates.assign(num_tasks, 0.0);
    for (std::size_t k = 0; k < ids.size(); ++k) {
      out.rates[ids[k]] = s.rates[k];
    }
    steps.push_back(std::move(out));
  }
  return core::StepSchedule(num_tasks, std::move(steps));
}

/// WSEW order over a compact live view: w / remaining descending (the
/// weighted-shortest-estimated-work priority of the service admission
/// queue), ties by trace id for determinism.
std::vector<std::size_t> wsew_order(const LiveView& view) {
  std::vector<std::size_t> order(view.sub.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    order[k] = k;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const core::Task& ta = view.sub.task(a);
    const core::Task& tb = view.sub.task(b);
    // w_a / V_a > w_b / V_b without dividing (volumes are positive for live
    // tasks, but stay safe for the zero-volume corner).
    const double lhs = ta.weight * tb.volume;
    const double rhs = tb.weight * ta.volume;
    if (lhs != rhs) {
      return lhs > rhs;
    }
    return view.ids[a] < view.ids[b];
  });
  return order;
}

/// Greedy-in-WSEW-order suffix, normalized by Water-Filling into the column
/// normal form (Theorem 8 guarantees normalization succeeds for any
/// completion vector the greedy schedule achieves).
core::StepSchedule wsew_plan(const ReplanContext& ctx) {
  const LiveView view = live_view(ctx);
  if (view.sub.size() == 0) {
    return core::StepSchedule(ctx.instance->size(), {});
  }
  const auto order = wsew_order(view);
  const auto greedy = core::greedy_schedule(view.sub, order);
  const auto completions = greedy.completions();
  const auto normal = core::water_fill(view.sub, completions);
  const core::StepSchedule sub_steps = normal.feasible
                                           ? core::to_steps(normal.schedule)
                                           : greedy;  // defensive fallback
  return lift_plan(sub_steps, view.ids, ctx.instance->size(), ctx.now);
}

class GreedyAppendPolicy final : public ReplanPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "greedy-append"; }
  [[nodiscard]] bool replan_on_completion() const override { return false; }

  [[nodiscard]] core::StepSchedule replan(const ReplanContext& ctx) override {
    const std::size_t n = ctx.instance->size();
    processors_ = ctx.instance->processors();
    if (placed_.size() < n) {
      placed_.resize(n, 0);
      pieces_.resize(n);
    }
    // Commit newly-arrived live tasks onto the running profile, in trace
    // order (= arrival order; ties broken by id).  Earlier commitments are
    // never revisited — that is the whole point of this policy.
    for (std::size_t i = 0; i < n; ++i) {
      if (ctx.live[i] == 0 || placed_[i] != 0) {
        continue;
      }
      place_after(ctx.now, ctx.instance->effective_width(i),
                  ctx.remaining[i], &pieces_[i]);
      placed_[i] = 1;
    }
    return build_suffix(ctx);
  }

 private:
  struct Segment {
    double begin = 0.0;
    double end = 0.0;
    double used = 0.0;
  };

  /// Algorithm-3 placement constrained to start no earlier than t0: the
  /// task runs at rate min(cap, P - used(t)) from t0 on, over the profile
  /// of everything committed so far.
  void place_after(double t0, double cap, double volume,
                   std::vector<core::ProfilePiece>* pieces) {
    pieces->clear();
    if (volume <= 0.0) {
      return;
    }
    const double P = processors_;
    // Ensure the profile covers [0, t0) so placement can index from t0.
    if (segments_.empty()) {
      segments_.push_back({0.0, t0, 0.0});
    } else if (segments_.back().end < t0) {
      segments_.push_back({segments_.back().end, t0, 0.0});
    }
    // Split the segment containing t0 so a boundary lands exactly on it.
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (segments_[k].begin < t0 && t0 < segments_[k].end) {
        Segment tail = segments_[k];
        tail.begin = t0;
        segments_[k].end = t0;
        segments_.insert(segments_.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                         tail);
        break;
      }
    }
    double left = volume;
    for (std::size_t k = 0; k < segments_.size() && left > 0.0; ++k) {
      Segment& seg = segments_[k];
      if (seg.end <= t0 || seg.end <= seg.begin) {
        continue;
      }
      const double rate = std::min(cap, P - seg.used);
      if (rate <= kRateEps) {
        continue;
      }
      const double len = seg.end - seg.begin;
      if (rate * len >= left) {
        // Completes inside this segment: split it at the crossing.
        const double span = left / rate;
        const double cut = seg.begin + span;
        if (cut < seg.end - 0.0) {
          Segment tail = seg;
          tail.begin = cut;
          seg.end = cut;
          segments_.insert(
              segments_.begin() + static_cast<std::ptrdiff_t>(k) + 1, tail);
        }
        segments_[k].used += rate;
        pieces->push_back({segments_[k].begin, segments_[k].end, rate});
        left = 0.0;
        break;
      }
      seg.used += rate;
      left -= rate * len;
      pieces->push_back({seg.begin, seg.end, rate});
    }
    if (left > 0.0) {
      // Past the committed horizon the machine is free: run flat out.
      const double rate = std::min(cap, P);
      const double begin = segments_.empty() ? t0 : segments_.back().end;
      const double end = begin + left / rate;
      segments_.push_back({begin, end, rate});
      pieces->push_back({begin, end, rate});
    }
    // Merge equal-used neighbours to keep the profile compact.
    std::size_t w = 0;
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (w > 0 && segments_[w - 1].used == segments_[k].used &&
          segments_[w - 1].end == segments_[k].begin) {
        segments_[w - 1].end = segments_[k].end;
      } else {
        segments_[w++] = segments_[k];
      }
    }
    segments_.resize(w);
  }

  /// The plan from `now` on: every live task's committed pieces, clipped.
  [[nodiscard]] core::StepSchedule build_suffix(const ReplanContext& ctx) {
    const std::size_t n = ctx.instance->size();
    std::set<double> cuts{ctx.now};
    for (std::size_t i = 0; i < n; ++i) {
      if (ctx.live[i] == 0) {
        continue;
      }
      for (const core::ProfilePiece& piece : pieces_[i]) {
        if (piece.end > ctx.now) {
          cuts.insert(std::max(piece.begin, ctx.now));
          cuts.insert(piece.end);
        }
      }
    }
    const std::vector<double> times(cuts.begin(), cuts.end());
    std::vector<core::Step> steps;
    for (std::size_t k = 0; k + 1 < times.size(); ++k) {
      core::Step step;
      step.begin = times[k];
      step.end = times[k + 1];
      step.rates.assign(n, 0.0);
      steps.push_back(std::move(step));
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (ctx.live[i] == 0) {
        continue;
      }
      for (const core::ProfilePiece& piece : pieces_[i]) {
        if (piece.end <= ctx.now) {
          continue;
        }
        const double begin = std::max(piece.begin, ctx.now);
        const auto first = std::lower_bound(times.begin(), times.end(), begin);
        for (std::size_t k = static_cast<std::size_t>(first - times.begin());
             k + 1 < times.size() && times[k] < piece.end; ++k) {
          steps[k].rates[i] = piece.rate;
        }
      }
    }
    return core::StepSchedule(n, std::move(steps));
  }

  static constexpr double kRateEps = 1e-12;

  double processors_ = 0.0;
  std::vector<Segment> segments_;
  std::vector<std::uint8_t> placed_;
  std::vector<std::vector<core::ProfilePiece>> pieces_;
};

class WsewReplanPolicy final : public ReplanPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "wsew-replan"; }

  [[nodiscard]] core::StepSchedule replan(const ReplanContext& ctx) override {
    return wsew_plan(ctx);
  }
};

class WdeqReplanPolicy final : public ReplanPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "wdeq-replan"; }

  [[nodiscard]] core::StepSchedule replan(const ReplanContext& ctx) override {
    const LiveView view = live_view(ctx);
    if (view.sub.size() == 0) {
      return core::StepSchedule(ctx.instance->size(), {});
    }
    const auto run = core::run_wdeq(view.sub);
    return lift_plan(run.schedule, view.ids, ctx.instance->size(), ctx.now);
  }
};

class ExactReplanPolicy final : public ReplanPolicy {
 public:
  explicit ExactReplanPolicy(const ExactReplanOptions& options)
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "exact-replan"; }
  [[nodiscard]] bool replan_on_completion() const override { return false; }

  [[nodiscard]] core::StepSchedule replan(const ReplanContext& ctx) override {
    const LiveView view = live_view(ctx);
    if (view.sub.size() == 0) {
      return core::StepSchedule(ctx.instance->size(), {});
    }
    if (view.sub.size() > options_.max_exact_tasks) {
      return wsew_plan(ctx);
    }
    core::BnbOptions bnb;
    bnb.want_schedule = true;
    if (ctx.cancel.can_cancel()) {
      bnb.cancel = ctx.cancel;
    } else if (options_.budget_seconds > 0.0) {
      bnb.cancel = core::CancelToken::with_deadline(
          core::CancelToken::Clock::now() +
          std::chrono::duration_cast<core::CancelToken::Clock::duration>(
              std::chrono::duration<double>(options_.budget_seconds)));
    }
    const auto result = core::branch_and_bound(view.sub, bnb);
    // Cancelled searches still carry the incumbent's schedule (the seeds
    // always run), so the plan stays feasible under any budget.
    return lift_plan(core::to_steps(result.schedule), view.ids,
                     ctx.instance->size(), ctx.now);
  }

 private:
  ExactReplanOptions options_;
};

}  // namespace

std::unique_ptr<ReplanPolicy> make_greedy_append_policy() {
  return std::make_unique<GreedyAppendPolicy>();
}

std::unique_ptr<ReplanPolicy> make_wsew_replan_policy() {
  return std::make_unique<WsewReplanPolicy>();
}

std::unique_ptr<ReplanPolicy> make_wdeq_replan_policy() {
  return std::make_unique<WdeqReplanPolicy>();
}

std::unique_ptr<ReplanPolicy> make_exact_replan_policy(
    const ExactReplanOptions& options) {
  return std::make_unique<ExactReplanPolicy>(options);
}

std::vector<std::unique_ptr<ReplanPolicy>> all_replan_policies() {
  std::vector<std::unique_ptr<ReplanPolicy>> policies;
  policies.push_back(make_greedy_append_policy());
  policies.push_back(make_wsew_replan_policy());
  policies.push_back(make_wdeq_replan_policy());
  policies.push_back(make_exact_replan_policy());
  return policies;
}

}  // namespace malsched::online
