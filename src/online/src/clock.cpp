#include "malsched/online/clock.hpp"

#include <algorithm>
#include <limits>

#include "malsched/support/contracts.hpp"

namespace malsched::online {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ReplayResult replay(const ArrivalTrace& trace, ReplanPolicy& policy,
                    const ReplayOptions& options) {
  const core::Instance instance = trace.to_instance();
  const std::size_t n = instance.size();
  const support::Tolerance tol = options.tol;

  ReplayResult result;
  result.completions.assign(n, 0.0);
  if (n == 0) {
    result.schedule = core::StepSchedule(0, {});
    return result;
  }

  std::vector<double> remaining(n);
  std::vector<std::uint8_t> live(n, 0);
  std::vector<std::uint8_t> done(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i] = instance.task(i).volume;
  }

  std::vector<core::Step> committed;
  double now = 0.0;
  std::size_t next_arrival = 0;  // first not-yet-admitted trace index
  std::size_t alive_count = 0;

  core::StepSchedule plan;
  std::size_t plan_pos = 0;
  bool need_replan = true;

  const auto arrival_time = [&](std::size_t k) {
    return k < trace.size() ? trace.arrival(k).time : kInf;
  };

  const auto commit = [&](double begin, double end,
                          const std::vector<double>& rates) {
    if (end <= begin) {
      return;
    }
    core::Step step;
    step.begin = begin;
    step.end = end;
    step.rates = rates;
    // Defensive: a plan must not run tasks that are not live; zero them so a
    // buggy policy corrupts its own objective, not the executed record.
    for (std::size_t i = 0; i < n; ++i) {
      if (live[i] == 0) {
        step.rates[i] = 0.0;
      }
    }
    committed.push_back(std::move(step));
  };

  // Each loop iteration admits arrivals, replans, or advances time to the
  // next event; a policy that never makes progress would spin, so bound the
  // iteration count well above any legitimate replay (each of the n tasks
  // contributes one arrival and one completion, each triggering at most one
  // replan plus one plan walk).
  const std::size_t max_iterations = 32 * n + 64;
  std::size_t iterations = 0;

  while (true) {
    MALSCHED_EXPECTS_MSG(++iterations <= max_iterations,
                         "online replay failed to make progress "
                         "(policy returned a plan that processes nothing?)");

    // Admit every arrival due now.
    bool admitted = false;
    while (next_arrival < trace.size() && arrival_time(next_arrival) <= now) {
      const std::size_t i = next_arrival++;
      ++result.events;
      if (instance.task(i).volume <= 0.0) {
        result.completions[i] = trace.arrival(i).time;
        done[i] = 1;
        continue;
      }
      live[i] = 1;
      ++alive_count;
      admitted = true;
    }
    if (admitted) {
      need_replan = true;
    }

    if (alive_count == 0) {
      if (next_arrival >= trace.size()) {
        break;  // every task arrived and completed
      }
      // Idle gap: nothing to run until the next arrival.
      const double next = arrival_time(next_arrival);
      commit(now, next, std::vector<double>(n, 0.0));
      now = next;
      continue;
    }

    if (need_replan) {
      ReplanContext ctx;
      ctx.now = now;
      ctx.instance = &instance;
      ctx.remaining = remaining;
      ctx.live = live;
      ctx.cancel = options.cancel;
      plan = policy.replan(ctx);
      ++result.replans;
      plan_pos = 0;
      need_replan = false;
      MALSCHED_EXPECTS_MSG(
          !plan.steps().empty(),
          "replan returned an empty plan with live tasks pending");
      MALSCHED_EXPECTS_MSG(
          support::approx_eq(plan.steps().front().begin, now, tol),
          "replan plan must start at the current time");
    }

    // Walk the plan until the next arrival or the next completion.
    const double next = arrival_time(next_arrival);
    bool completed_any = false;
    while (plan_pos < plan.steps().size() && now < next) {
      const core::Step& step = plan.steps()[plan_pos];
      if (step.end <= now) {
        ++plan_pos;
        continue;
      }
      const double bound = std::min(step.end, next);

      // Earliest completion crossing inside (now, bound]; crossings within
      // tolerance of the step end snap to it, so plans built from column
      // schedules complete exactly at their LP boundaries.
      double crossing = kInf;
      for (std::size_t i = 0; i < n; ++i) {
        if (live[i] == 0 || step.rates[i] <= tol.abs) {
          continue;
        }
        double t = now + remaining[i] / step.rates[i];
        if (t >= step.end - tol.slack(step.end)) {
          t = step.end;
        }
        crossing = std::min(crossing, t);
      }

      const double stop = std::min(crossing, bound);
      if (stop > now) {
        commit(now, stop, step.rates);
        const double len = stop - now;
        for (std::size_t i = 0; i < n; ++i) {
          if (live[i] != 0 && step.rates[i] > 0.0) {
            remaining[i] -= step.rates[i] * len;
          }
        }
        now = stop;
      }

      // Retire every task that crossed zero (ties complete together).
      for (std::size_t i = 0; i < n; ++i) {
        if (live[i] != 0 &&
            remaining[i] <= tol.slack(instance.task(i).volume)) {
          remaining[i] = 0.0;
          live[i] = 0;
          done[i] = 1;
          --alive_count;
          result.completions[i] = now;
          ++result.events;
          completed_any = true;
        }
      }

      if (now >= step.end) {
        ++plan_pos;
      }
      if (completed_any) {
        break;
      }
      MALSCHED_EXPECTS_MSG(stop > step.begin || stop == next,
                           "online replay stalled inside a plan step");
    }

    if (completed_any) {
      if (alive_count > 0 && policy.replan_on_completion()) {
        need_replan = true;
      }
      continue;
    }
    if (now >= next) {
      continue;  // admit the due arrivals at the top of the loop
    }
    if (plan_pos >= plan.steps().size() && alive_count > 0) {
      // Plan exhausted with work left — only a policy bug gets here, but
      // give it one more chance to produce a finishing plan (the iteration
      // guard stops a true runaway).
      need_replan = true;
    }
  }

  result.schedule = core::StepSchedule(n, std::move(committed));
  for (std::size_t i = 0; i < n; ++i) {
    result.weighted_completion +=
        instance.task(i).weight * result.completions[i];
    result.makespan = std::max(result.makespan, result.completions[i]);
  }
  return result;
}

}  // namespace malsched::online
