#pragma once

/// \file metrics.hpp
/// Schedule quality metrics beyond the paper's objective: per-task stretch
/// (completion vs. the task's lower bound V/min(δ,P)), Jain fairness over
/// stretches, and machine utilization.  Used by the policy-comparison
/// examples and benches to show *how* the 2-approximation behaves, not just
/// that it holds.

#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::sim {

struct ScheduleMetrics {
  double weighted_completion = 0.0;
  double makespan = 0.0;
  /// Stretch of task i: C_i / (V_i / min(δ_i, P)) >= 1; zero-volume tasks
  /// are skipped.
  double mean_stretch = 0.0;
  double max_stretch = 0.0;
  /// Jain index over stretches: (Σ s)² / (n Σ s²) ∈ (0, 1]; 1 = all tasks
  /// slowed down equally.
  double jain_fairness = 1.0;
  /// Busy processor-time divided by P · makespan (0 for empty schedules).
  double utilization = 0.0;
};

[[nodiscard]] ScheduleMetrics compute_metrics(const core::Instance& instance,
                                              const core::StepSchedule& schedule,
                                              support::Tolerance tol = {});

}  // namespace malsched::sim
