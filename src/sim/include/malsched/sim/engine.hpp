#pragma once

/// \file engine.hpp
/// Fluid event-driven execution engine.  Runs an allocation policy to
/// completion: rates are recomputed at every task completion (the only
/// event type in the work-preserving fluid model), producing a
/// piecewise-constant StepSchedule plus per-event telemetry.

#include <span>
#include <vector>

#include "malsched/core/cancel.hpp"
#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"
#include "malsched/sim/policy.hpp"

namespace malsched::sim {

struct EngineResult {
  core::StepSchedule schedule;
  /// Completion times indexed by task.
  std::vector<double> completions;
  /// Weighted completion Σ w_i C_i.
  double weighted_completion = 0.0;
  /// Number of policy invocations (events).
  std::size_t events = 0;
  /// True when EngineOptions::cancel fired mid-run; the schedule then stops
  /// at the last completed event and unfinished tasks report completion 0 —
  /// a partial trace, not a valid MWCT answer.
  bool cancelled = false;
};

struct EngineOptions {
  support::Tolerance tol = {};
  /// Safety valve: abort (contract failure) if the policy stops making
  /// progress after this many events.  0 means the default 4n + 16: a
  /// well-behaved run needs at most n completion events plus n arrival
  /// events plus n idle gaps between arrivals — 4n + 16 leaves a 1n + 16
  /// margin for tolerance-induced re-shares before declaring the policy
  /// stuck.  tests/sim/test_engine.cpp pins this budget.
  std::size_t max_events = 0;
  /// Cooperative cancellation, polled once per event — the abort latency of
  /// an engine-backed solve is therefore one policy invocation (O(n) work),
  /// microseconds in practice.  A default token never fires and the poll is
  /// skipped entirely (cancel.hpp).
  core::CancelToken cancel;
};

/// Runs `policy` on `instance` until every task completes.  Zero-task
/// instances are valid input and produce an empty schedule with zero events
/// (the service layer forwards arbitrary client batches here).
[[nodiscard]] EngineResult run_policy(const core::Instance& instance,
                                      const AllocationPolicy& policy,
                                      const EngineOptions& options = {});

/// Online variant: task i only becomes visible (and schedulable) at
/// release[i].  The policy is re-invoked at every arrival and completion —
/// the natural online operation of WDEQ-style policies the paper's
/// non-clairvoyant setting implies.  With all releases zero this is exactly
/// run_policy.
[[nodiscard]] EngineResult run_policy_online(
    const core::Instance& instance, std::span<const double> release,
    const AllocationPolicy& policy, const EngineOptions& options = {});

}  // namespace malsched::sim
