#pragma once

/// \file policy.hpp
/// Allocation policies for the fluid execution engine.  A policy sees the
/// alive tasks (and, when clairvoyant, the remaining volumes) and returns
/// the processor rates to apply until the next completion event.
///
/// The zoo covers the baselines the paper's Table I cites: WDEQ (Algorithm
/// 1), DEQ (Deng et al. [13]), weighted round-robin (Kim & Chwa [14],
/// without surplus redistribution), rigid FCFS (the non-malleable
/// strawman), and clairvoyant Smith-priority greedy.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"

namespace malsched::sim {

/// Snapshot handed to a policy at each decision point.
struct PolicyContext {
  double processors = 0.0;
  std::span<const double> weights;
  std::span<const double> widths;       ///< effective widths (δ clamped at P)
  std::span<const std::uint8_t> alive;  ///< 1 = still running
  double now = 0.0;
  /// Remaining volumes; empty for non-clairvoyant policies.
  std::span<const double> remaining;
};

/// Interface: return per-task rates (0 for dead tasks, <= width, Σ <= P).
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// True when the policy wants remaining volumes in its context.
  [[nodiscard]] virtual bool clairvoyant() const { return false; }
  [[nodiscard]] virtual std::vector<double> allocate(
      const PolicyContext& context) const = 0;
};

/// WDEQ: weighted equipartition with cap-and-redistribute (Algorithm 1).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_wdeq_policy();

/// DEQ: unweighted equipartition.
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_deq_policy();

/// Weighted round-robin: share w_i P / Σw capped at δ_i, surplus *wasted*
/// (the single-processor analysis of [14] transplanted literally).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_wrr_policy();

/// Rigid FCFS: tasks in index order get exactly δ_i processors if they fit,
/// otherwise wait — the non-malleable baseline.
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_fifo_rigid_policy();

/// Clairvoyant Smith greedy: tasks in w/V-descending order get their full
/// width while capacity lasts (re-evaluated at each completion).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_smith_greedy_policy();

/// All policies above, for comparison sweeps.
[[nodiscard]] std::vector<std::unique_ptr<AllocationPolicy>> all_policies();

}  // namespace malsched::sim
