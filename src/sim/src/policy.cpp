#include "malsched/sim/policy.hpp"

#include <algorithm>
#include <numeric>

#include "malsched/core/wdeq.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::sim {

namespace {

class WdeqPolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "wdeq"; }
  [[nodiscard]] std::vector<double> allocate(
      const PolicyContext& context) const override {
    return core::wdeq_shares(context.processors, context.weights,
                             context.widths, context.alive);
  }
};

class DeqPolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "deq"; }
  [[nodiscard]] std::vector<double> allocate(
      const PolicyContext& context) const override {
    const std::vector<double> unit(context.weights.size(), 1.0);
    return core::wdeq_shares(context.processors, unit, context.widths,
                             context.alive);
  }
};

class WrrPolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "wrr"; }
  [[nodiscard]] std::vector<double> allocate(
      const PolicyContext& context) const override {
    const std::size_t n = context.weights.size();
    std::vector<double> rates(n, 0.0);
    double alive_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (context.alive[i]) {
        alive_weight += context.weights[i];
      }
    }
    if (alive_weight <= 0.0) {
      return rates;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (context.alive[i]) {
        rates[i] = std::min(context.widths[i],
                            context.weights[i] * context.processors /
                                alive_weight);
      }
    }
    return rates;
  }
};

class FifoRigidPolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "fifo-rigid"; }
  [[nodiscard]] std::vector<double> allocate(
      const PolicyContext& context) const override {
    const std::size_t n = context.weights.size();
    std::vector<double> rates(n, 0.0);
    double left = context.processors;
    for (std::size_t i = 0; i < n && left > 0.0; ++i) {
      if (!context.alive[i]) {
        continue;
      }
      // Rigid: all-or-nothing at the task's width.
      if (context.widths[i] <= left) {
        rates[i] = context.widths[i];
        left -= context.widths[i];
      }
    }
    // Guard against total deadlock (first alive task wider than P can never
    // fit rigidly): let it run malleably rather than hang the simulation.
    if (left == context.processors) {
      for (std::size_t i = 0; i < n; ++i) {
        if (context.alive[i]) {
          rates[i] = std::min(context.widths[i], left);
          break;
        }
      }
    }
    return rates;
  }
};

class SmithGreedyPolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "smith-greedy"; }
  [[nodiscard]] bool clairvoyant() const override { return true; }
  [[nodiscard]] std::vector<double> allocate(
      const PolicyContext& context) const override {
    MALSCHED_EXPECTS_MSG(!context.remaining.empty(),
                         "smith-greedy needs remaining volumes");
    const std::size_t n = context.weights.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    // Smith priority on the *remaining* work: w / V_rem descending, i.e.
    // V_rem / w ascending.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return context.remaining[a] * context.weights[b] <
                              context.remaining[b] * context.weights[a];
                     });
    std::vector<double> rates(n, 0.0);
    double left = context.processors;
    for (const std::size_t i : order) {
      if (!context.alive[i] || left <= 0.0) {
        continue;
      }
      rates[i] = std::min(context.widths[i], left);
      left -= rates[i];
    }
    return rates;
  }
};

}  // namespace

std::unique_ptr<AllocationPolicy> make_wdeq_policy() {
  return std::make_unique<WdeqPolicy>();
}
std::unique_ptr<AllocationPolicy> make_deq_policy() {
  return std::make_unique<DeqPolicy>();
}
std::unique_ptr<AllocationPolicy> make_wrr_policy() {
  return std::make_unique<WrrPolicy>();
}
std::unique_ptr<AllocationPolicy> make_fifo_rigid_policy() {
  return std::make_unique<FifoRigidPolicy>();
}
std::unique_ptr<AllocationPolicy> make_smith_greedy_policy() {
  return std::make_unique<SmithGreedyPolicy>();
}

std::vector<std::unique_ptr<AllocationPolicy>> all_policies() {
  std::vector<std::unique_ptr<AllocationPolicy>> out;
  out.push_back(make_wdeq_policy());
  out.push_back(make_deq_policy());
  out.push_back(make_wrr_policy());
  out.push_back(make_fifo_rigid_policy());
  out.push_back(make_smith_greedy_policy());
  return out;
}

}  // namespace malsched::sim
