#include "malsched/sim/metrics.hpp"

#include <algorithm>

#include "malsched/support/contracts.hpp"

namespace malsched::sim {

ScheduleMetrics compute_metrics(const core::Instance& instance,
                                const core::StepSchedule& schedule,
                                support::Tolerance tol) {
  MALSCHED_EXPECTS(instance.size() == schedule.num_tasks());
  ScheduleMetrics metrics;
  const auto completions = schedule.completions(tol);

  double stretch_sum = 0.0;
  double stretch_sq_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const core::Task& task = instance.task(i);
    metrics.weighted_completion += task.weight * completions[i];
    metrics.makespan = std::max(metrics.makespan, completions[i]);
    if (task.volume <= tol.abs) {
      continue;
    }
    const double ideal = task.volume / instance.effective_width(i);
    const double stretch = completions[i] / ideal;
    metrics.max_stretch = std::max(metrics.max_stretch, stretch);
    stretch_sum += stretch;
    stretch_sq_sum += stretch * stretch;
    ++counted;
  }
  if (counted > 0) {
    metrics.mean_stretch = stretch_sum / static_cast<double>(counted);
    if (stretch_sq_sum > 0.0) {
      metrics.jain_fairness =
          stretch_sum * stretch_sum /
          (static_cast<double>(counted) * stretch_sq_sum);
    }
  }

  if (metrics.makespan > 0.0) {
    double busy = 0.0;
    for (const auto& step : schedule.steps()) {
      for (double rate : step.rates) {
        busy += rate * step.length();
      }
    }
    metrics.utilization =
        busy / (instance.processors() * metrics.makespan);
  }
  return metrics;
}

}  // namespace malsched::sim
