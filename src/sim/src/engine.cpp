#include "malsched/sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "malsched/support/contracts.hpp"

namespace malsched::sim {

EngineResult run_policy(const core::Instance& instance,
                        const AllocationPolicy& policy,
                        const EngineOptions& options) {
  const std::vector<double> zero_release(instance.size(), 0.0);
  return run_policy_online(instance, zero_release, policy, options);
}

EngineResult run_policy_online(const core::Instance& instance,
                               std::span<const double> release,
                               const AllocationPolicy& policy,
                               const EngineOptions& options) {
  MALSCHED_EXPECTS(release.size() == instance.size());
  // n == 0 needs no special case: the completion loop below is vacuous, the
  // policy is never consulted, and the fall-through returns the empty
  // result (pinned by tests/sim/test_engine.cpp).
  const std::size_t n = instance.size();
  const auto tol = options.tol;
  const std::size_t max_events =
      options.max_events != 0 ? options.max_events : 4 * n + 16;

  std::vector<double> weights(n);
  std::vector<double> widths(n);
  std::vector<double> remaining(n);
  std::vector<std::uint8_t> alive(n, 0);     // arrived and unfinished
  std::vector<std::uint8_t> finished(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    MALSCHED_EXPECTS(release[i] >= 0.0);
    weights[i] = instance.task(i).weight;
    widths[i] = instance.effective_width(i);
    remaining[i] = instance.task(i).volume;
    if (remaining[i] <= tol.abs) {
      finished[i] = 1;
    } else if (release[i] <= tol.abs) {
      alive[i] = 1;
    }
  }

  EngineResult result;
  result.completions.assign(n, 0.0);
  std::vector<core::Step> steps;

  double now = 0.0;
  std::size_t events = 0;
  const auto all_done = [&] {
    return std::all_of(finished.begin(), finished.end(),
                       [](std::uint8_t b) { return b != 0; });
  };
  const bool poll_cancel = options.cancel.can_cancel();
  while (!all_done()) {
    // One poll per event bounds abort latency at a single policy
    // invocation; the schedule stops at the last event already emitted.
    if (poll_cancel && options.cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    MALSCHED_EXPECTS_MSG(events < max_events,
                         "allocation policy stopped making progress");
    // Next arrival among not-yet-released tasks.
    double next_arrival = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i] && !finished[i] && release[i] > now + tol.abs) {
        next_arrival = std::min(next_arrival, release[i]);
      }
    }
    // Release anything due now (handles several tasks sharing a release).
    bool released_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i] && !finished[i] && release[i] <= now + tol.abs) {
        alive[i] = 1;
        released_any = true;
      }
    }
    (void)released_any;

    const bool anyone_running = std::any_of(
        alive.begin(), alive.end(), [](std::uint8_t b) { return b != 0; });
    if (!anyone_running) {
      // Idle until the next arrival.
      MALSCHED_ASSERT(std::isfinite(next_arrival));
      steps.push_back({now, next_arrival, std::vector<double>(n, 0.0)});
      now = next_arrival;
      continue;
    }

    PolicyContext context;
    context.processors = instance.processors();
    context.weights = weights;
    context.widths = widths;
    context.alive = alive;
    context.now = now;
    if (policy.clairvoyant()) {
      context.remaining = remaining;
    }
    const auto rates = policy.allocate(context);
    MALSCHED_ENSURES(rates.size() == n);
    ++events;

    // Sanity: rates respect widths and capacity (policies are trusted but
    // cheap to check).
    double used = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      MALSCHED_ENSURES(rates[i] >= -tol.abs);
      MALSCHED_ENSURES(rates[i] <= widths[i] + tol.slack(widths[i]));
      used += rates[i];
    }
    MALSCHED_ENSURES(used <=
                     instance.processors() + tol.slack(instance.processors()));

    // Time to the next event: completion among progressing tasks, or the
    // next arrival (which forces a re-share).
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i] && rates[i] > tol.abs) {
        dt = std::min(dt, remaining[i] / rates[i]);
      }
    }
    MALSCHED_EXPECTS_MSG(std::isfinite(dt) || std::isfinite(next_arrival),
                         "policy starves every remaining task");
    dt = std::min(dt, next_arrival - now);

    core::Step step;
    step.begin = now;
    step.end = now + dt;
    step.rates.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i] || rates[i] <= tol.abs) {
        continue;
      }
      step.rates[i] = rates[i];
      remaining[i] -= rates[i] * dt;
      if (remaining[i] <= tol.slack(instance.task(i).volume)) {
        remaining[i] = 0.0;
        alive[i] = 0;
        finished[i] = 1;
        result.completions[i] = now + dt;
      }
    }
    steps.push_back(std::move(step));
    now += dt;
  }

  result.events = events;
  result.schedule = core::StepSchedule(n, std::move(steps));
  for (std::size_t i = 0; i < n; ++i) {
    result.weighted_completion +=
        instance.task(i).weight * result.completions[i];
  }
  return result;
}

}  // namespace malsched::sim
