#include "malsched/flow/max_flow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "malsched/support/contracts.hpp"

namespace malsched::flow {

MaxFlow::MaxFlow(std::size_t num_nodes, double eps)
    : eps_(eps), graph_(num_nodes) {
  MALSCHED_EXPECTS(num_nodes >= 2);
  MALSCHED_EXPECTS(eps > 0.0);
}

std::size_t MaxFlow::add_edge(std::size_t from, std::size_t to,
                              double capacity) {
  MALSCHED_EXPECTS(from < graph_.size() && to < graph_.size());
  MALSCHED_EXPECTS(capacity >= 0.0);
  const std::size_t id = edges_.size();
  edges_.push_back({to, capacity, id + 1});
  edges_.push_back({from, 0.0, id});
  graph_[from].push_back(id);
  graph_[to].push_back(id + 1);
  original_capacity_.push_back(capacity);
  original_capacity_.push_back(0.0);
  return id;
}

bool MaxFlow::build_levels(std::size_t source, std::size_t sink) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> frontier;
  level_[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t node = frontier.front();
    frontier.pop();
    for (const std::size_t id : graph_[node]) {
      const Edge& edge = edges_[id];
      if (edge.capacity > eps_ && level_[edge.to] < 0) {
        level_[edge.to] = level_[node] + 1;
        frontier.push(edge.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double MaxFlow::push(std::size_t node, std::size_t sink, double limit) {
  if (node == sink || limit <= eps_) {
    return node == sink ? limit : 0.0;
  }
  for (std::size_t& cursor = next_edge_[node]; cursor < graph_[node].size();
       ++cursor) {
    const std::size_t id = graph_[node][cursor];
    Edge& edge = edges_[id];
    if (edge.capacity <= eps_ || level_[edge.to] != level_[node] + 1) {
      continue;
    }
    const double pushed =
        push(edge.to, sink, std::min(limit, edge.capacity));
    if (pushed > eps_) {
      edge.capacity -= pushed;
      edges_[edge.twin].capacity += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double MaxFlow::solve(std::size_t source, std::size_t sink) {
  MALSCHED_EXPECTS(source < graph_.size() && sink < graph_.size());
  MALSCHED_EXPECTS(source != sink);
  double total = 0.0;
  while (build_levels(source, sink)) {
    next_edge_.assign(graph_.size(), 0);
    for (;;) {
      const double pushed =
          push(source, sink, std::numeric_limits<double>::infinity());
      if (pushed <= eps_) {
        break;
      }
      total += pushed;
    }
  }
  return total;
}

double MaxFlow::flow_on(std::size_t id) const {
  MALSCHED_EXPECTS(id < edges_.size());
  // Forward edges carry original - residual.
  return original_capacity_[id] - edges_[id].capacity;
}

}  // namespace malsched::flow
