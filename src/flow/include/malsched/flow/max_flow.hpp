#pragma once

/// \file max_flow.hpp
/// Dinic's maximum-flow algorithm on real-valued capacities.
///
/// Substrate for the release-date scheduling variants (Table I rows with
/// r_i): feasibility of "volumes V_i, widths δ_i, windows [r_i, d_i] on P
/// processors" is a bipartite task→interval flow being saturating.  Kept
/// generic — a small, audited max-flow usable on any DAG-ish network.

#include <cstddef>
#include <vector>

namespace malsched::flow {

/// A flow network with real capacities.  Nodes are dense indices; edges are
/// added with an implicit residual twin.
class MaxFlow {
 public:
  /// \param num_nodes  total node count (source/sink are ordinary nodes)
  /// \param eps        capacities/flows below eps are treated as zero
  explicit MaxFlow(std::size_t num_nodes, double eps = 1e-12);

  /// Adds a directed edge u -> v with the given capacity; returns an edge
  /// id usable with flow_on().
  std::size_t add_edge(std::size_t from, std::size_t to, double capacity);

  /// Computes the maximum flow from source to sink (Dinic: BFS level graph
  /// + blocking DFS).  May be called once per network.
  double solve(std::size_t source, std::size_t sink);

  /// Flow routed through edge `id` (after solve).
  [[nodiscard]] double flow_on(std::size_t id) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return graph_.size(); }

 private:
  struct Edge {
    std::size_t to;
    double capacity;  ///< residual capacity
    std::size_t twin; ///< index of the reverse edge in edges_
  };

  bool build_levels(std::size_t source, std::size_t sink);
  double push(std::size_t node, std::size_t sink, double limit);

  double eps_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> graph_;  ///< node -> edge ids
  std::vector<double> original_capacity_;
  std::vector<int> level_;
  std::vector<std::size_t> next_edge_;
};

}  // namespace malsched::flow
