// rng.hpp is header-only; this translation unit pins the vtable-free library
// symbol set and gives the header a compilation smoke test.
#include "malsched/support/rng.hpp"
