#include "malsched/support/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "malsched/support/contracts.hpp"

namespace malsched::support {

TextTable::TextTable(std::vector<Column> columns) : columns_(std::move(columns)) {
  MALSCHED_EXPECTS(!columns_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  MALSCHED_EXPECTS(cells.size() == columns_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].name.size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto pad = [](const std::string& text, std::size_t width, Align align) {
    std::string out;
    const std::size_t fill = width - std::min(width, text.size());
    if (align == Align::Right) {
      out.append(fill, ' ');
      out += text;
    } else {
      out += text;
      out.append(fill, ' ');
    }
    return out;
  };

  std::ostringstream out;
  const auto emit_rule = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      out << (c == 0 ? "+" : "+") << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };

  emit_rule();
  out << "|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << ' ' << pad(columns_[c].name, widths[c], Align::Left) << " |";
  }
  out << "\n";
  emit_rule();
  for (const Row& row : rows_) {
    if (row.rule_before) {
      emit_rule();
    }
    out << "|";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      out << ' ' << pad(row.cells[c], widths[c], columns_[c].align) << " |";
    }
    out << "\n";
  }
  emit_rule();
  return out.str();
}

std::string fmt_double(double v, int precision) {
  if (std::isnan(v)) {
    return "-";
  }
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string fmt_ratio(double v, int precision) {
  if (std::isinf(v)) {
    return "inf";
  }
  return fmt_double(v, precision);
}

std::string fmt_int(long long v) { return std::to_string(v); }

}  // namespace malsched::support
