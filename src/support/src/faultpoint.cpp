#include "malsched/support/faultpoint.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace malsched::support {

namespace {

struct FaultSpec {
  FaultAction action = FaultAction::None;
  std::chrono::milliseconds stall{1000};
  int exit_code = 1;
  std::uint64_t nth = 1;   ///< trigger on exactly this crossing
  std::uint64_t hits = 0;  ///< crossings since arming
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, FaultSpec> points;
  bool env_checked = false;
};

/// Meyers singleton + never-destroyed: faultpoints fire from detached-ish
/// worker threads during process teardown, after static destructors would
/// have run a plain global down.
Registry& registry() {
  static Registry* instance = new Registry();
  return *instance;
}

/// Disarmed fast path: one relaxed load.  `armed` is true whenever the
/// registry MAY hold points (including "env not parsed yet", so the first
/// crossing gets a chance to read MALSCHED_FAULT).
std::atomic<bool> armed{true};

/// Parses "<point>=<action>[:<arg>][@<nth>]" into `out`; false on garbage.
bool parse_one(const std::string& text, std::string* name, FaultSpec* out) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    return false;
  }
  *name = text.substr(0, eq);
  std::string action = text.substr(eq + 1);
  // Peel @nth off the back first so ':' parsing cannot eat it.
  if (const auto at = action.find('@'); at != std::string::npos) {
    const std::string nth_text = action.substr(at + 1);
    action.erase(at);
    char* end = nullptr;
    const unsigned long long nth = std::strtoull(nth_text.c_str(), &end, 10);
    if (end == nth_text.c_str() || *end != '\0' || nth == 0) {
      return false;
    }
    out->nth = nth;
  }
  std::string arg;
  if (const auto colon = action.find(':'); colon != std::string::npos) {
    arg = action.substr(colon + 1);
    action.erase(colon);
  }
  const auto parse_arg = [&](long long fallback) {
    if (arg.empty()) {
      return fallback;
    }
    char* end = nullptr;
    const long long value = std::strtoll(arg.c_str(), &end, 10);
    return (end == arg.c_str() || *end != '\0' || value < 0) ? -1LL : value;
  };
  if (action == "kill") {
    out->action = FaultAction::Kill;
    return arg.empty();
  }
  if (action == "exit") {
    const long long code = parse_arg(1);
    if (code < 0 || code > 255) {
      return false;
    }
    out->action = FaultAction::Exit;
    out->exit_code = static_cast<int>(code);
    return true;
  }
  if (action == "stall") {
    const long long ms = parse_arg(1000);
    if (ms < 0) {
      return false;
    }
    out->action = FaultAction::Stall;
    out->stall = std::chrono::milliseconds(ms);
    return true;
  }
  if (action == "dup") {
    out->action = FaultAction::Dup;
    return arg.empty();
  }
  return false;
}

bool parse_spec(const std::string& spec,
                std::map<std::string, FaultSpec>* points) {
  std::size_t start = 0;
  while (start < spec.size()) {
    auto comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) {
      continue;
    }
    std::string name;
    FaultSpec parsed;
    if (!parse_one(item, &name, &parsed)) {
      return false;
    }
    (*points)[name] = parsed;
  }
  return true;
}

/// Reads MALSCHED_FAULT once, on the first crossing with nothing armed
/// programmatically.  A malformed env spec is ignored (a production run
/// must not die because an operator typo'd a test knob).
void check_env_locked(Registry& reg) {
  if (reg.env_checked) {
    return;
  }
  reg.env_checked = true;
  const char* env = std::getenv(kFaultEnv);
  if (env != nullptr && *env != '\0') {
    std::map<std::string, FaultSpec> points;
    if (parse_spec(env, &points)) {
      reg.points = std::move(points);
    }
  }
}

}  // namespace

FaultAction faultpoint(const char* name) {
  if (!armed.load(std::memory_order_relaxed)) {
    return FaultAction::None;
  }
  FaultAction action = FaultAction::None;
  std::chrono::milliseconds stall{0};
  int exit_code = 0;
  {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    check_env_locked(reg);
    if (reg.points.empty()) {
      // Env parsed, nothing armed: drop to the fast path for good (until
      // the next fault_arm flips it back).
      armed.store(false, std::memory_order_relaxed);
      return FaultAction::None;
    }
    const auto it = reg.points.find(name);
    if (it == reg.points.end()) {
      return FaultAction::None;
    }
    FaultSpec& spec = it->second;
    if (++spec.hits != spec.nth) {
      return FaultAction::None;
    }
    action = spec.action;
    stall = spec.stall;
    exit_code = spec.exit_code;
  }
  switch (action) {
    case FaultAction::Kill:
      // SIGKILL own process: the exact death a machine failure delivers,
      // at an exact protocol boundary.  Cannot be caught or flushed.
      ::kill(::getpid(), SIGKILL);
      for (;;) {
        ::pause();  // unreachable; the signal is not blockable
      }
    case FaultAction::Exit:
      ::_exit(exit_code);
    case FaultAction::Stall:
      std::this_thread::sleep_for(stall);
      return FaultAction::Stall;
    case FaultAction::Dup:
    case FaultAction::None:
      break;
  }
  return action;
}

bool fault_arm(const std::string& spec) {
  std::map<std::string, FaultSpec> points;
  if (!parse_spec(spec, &points)) {
    return false;
  }
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.env_checked = true;  // programmatic arming overrides the env
  reg.points = std::move(points);
  armed.store(true, std::memory_order_relaxed);
  return true;
}

void fault_disarm() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.env_checked = true;
  reg.points.clear();
  armed.store(false, std::memory_order_relaxed);
}

std::uint64_t faultpoint_hits(const char* name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.hits;
}

}  // namespace malsched::support
