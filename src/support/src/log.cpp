#include "malsched/support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace malsched::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?    ";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[malsched %s] %s\n", level_name(level), message.c_str());
}

}  // namespace malsched::support
