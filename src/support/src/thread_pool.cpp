#include "malsched/support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "malsched/support/contracts.hpp"

namespace malsched::support {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const std::size_t count = end - begin;
  const std::size_t chunk =
      std::max<std::size_t>(1, count / (std::size_t{thread_count()} * 4));
  parallel_for_chunked(begin, end, chunk,
                       [&body](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           body(i);
                         }
                       });
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  MALSCHED_EXPECTS(chunk > 0);
  if (begin >= end) {
    return;
  }
  // Single worker: run inline to avoid queue overhead (also the common case
  // on the single-core CI host).
  if (thread_count() <= 1) {
    for (std::size_t lo = begin; lo < end; lo += chunk) {
      body(lo, std::min(end, lo + chunk));
    }
    return;
  }

  std::atomic<std::size_t> remaining{(end - begin + chunk - 1) / chunk};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    enqueue([&, lo, hi] {
      // Once a chunk failed, later chunks are skipped (their work would be
      // discarded anyway — the caller sees the first exception).
      if (!failed.load(std::memory_order_acquire)) {
        try {
          body(lo, hi);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(done_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_release);
        }
      }
      // The final decrement must happen under done_mutex: otherwise a
      // spurious wakeup could let the caller observe remaining == 0 and
      // destroy the stack-local mutex/cv before this worker locks them.
      const std::lock_guard<std::mutex> lock(done_mutex);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace malsched::support
