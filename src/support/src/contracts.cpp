#include "malsched/support/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace malsched::support {

void contract_failure(const char* kind, const char* condition, const char* file,
                      int line, const char* message) noexcept {
  std::fprintf(stderr, "[malsched] %s violated: %s\n  at %s:%d\n", kind,
               condition, file, line);
  if (message != nullptr) {
    std::fprintf(stderr, "  note: %s\n", message);
  }
  std::abort();
}

}  // namespace malsched::support
