#include "malsched/support/csv.hpp"

#include <sstream>

#include "malsched/support/contracts.hpp"

namespace malsched::support {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  MALSCHED_EXPECTS(!header.empty());
  if (out_) {
    write_cells(header);
  }
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  MALSCHED_EXPECTS(cells.size() == columns_);
  write_cells(cells);
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  MALSCHED_EXPECTS(cells.size() == columns_);
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream s;
    s.precision(12);
    s << v;
    text.push_back(s.str());
  }
  write_cells(text);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace malsched::support
