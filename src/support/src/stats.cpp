#include "malsched/support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "malsched/support/contracts.hpp"

namespace malsched::support {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Accumulator::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Sample::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double Sample::mean() const noexcept {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

void Sample::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Sample::min() const {
  MALSCHED_EXPECTS(!values_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Sample::max() const {
  MALSCHED_EXPECTS(!values_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Sample::quantile(double p) const {
  MALSCHED_EXPECTS(!values_.empty());
  MALSCHED_EXPECTS(p >= 0.0 && p <= 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) {
    return sorted_.front();
  }
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Sample::summary(int precision) const {
  std::ostringstream out;
  out.precision(precision);
  if (values_.empty()) {
    out << "n=0";
    return out.str();
  }
  out << "n=" << values_.size() << " mean=" << mean() << " min=" << min()
      << " p50=" << quantile(0.5) << " p99=" << quantile(0.99)
      << " max=" << max();
  return out.str();
}

}  // namespace malsched::support
