#pragma once

/// \file rng.hpp
/// Deterministic random number generation for experiments.
///
/// Every Monte-Carlo experiment in the benchmark harness logs its seed and
/// uses these generators, so any reported row can be regenerated bit-for-bit.
/// The engine is xoshiro256** seeded through SplitMix64 (the reference
/// seeding procedure); `Rng::fork` derives statistically independent streams
/// for parallel workers.

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "malsched/support/contracts.hpp"

namespace malsched::support {

/// SplitMix64 step: used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine.  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Convenience wrapper bundling an engine with the distributions the
/// experiment code needs.  Distributions are hand-rolled (not std::) so that
/// streams are reproducible across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) noexcept : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed with (for experiment logs).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    MALSCHED_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform double in (0, hi]; never returns exactly zero, which keeps
  /// generated volumes/widths strictly positive as the paper's experiments
  /// require.
  [[nodiscard]] double uniform_pos(double hi) noexcept {
    MALSCHED_EXPECTS(hi > 0.0);
    return hi * (1.0 - uniform01());
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept {
    MALSCHED_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection sampling to avoid modulo bias (span == 0 means full range).
    if (span == 0) {
      return static_cast<std::int64_t>(engine_());
    }
    const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
    std::uint64_t draw = engine_();
    while (draw >= limit) {
      draw = engine_();
    }
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept {
    MALSCHED_EXPECTS(rate > 0.0);
    double u = uniform01();
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -std::log(1.0 - u) / rate;
  }

  /// Pareto-like heavy tail on [scale, inf): scale / U^{1/shape}.
  [[nodiscard]] double pareto(double scale, double shape) noexcept {
    MALSCHED_EXPECTS(scale > 0.0 && shape > 0.0);
    return scale / std::pow(1.0 - uniform01(), 1.0 / shape);
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n) noexcept {
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) {
      perm[i] = i;
    }
    shuffle(std::span<std::size_t>(perm));
    return perm;
  }

  /// Derives an independent stream for parallel worker `stream`.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept {
    std::uint64_t s = seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    (void)splitmix64(s);
    return Rng(splitmix64(s));
  }

  /// Raw 64-bit draw (UniformRandomBitGenerator compatibility).
  [[nodiscard]] std::uint64_t next_u64() noexcept { return engine_(); }

 private:
  Xoshiro256 engine_;
  std::uint64_t seed_;
};

}  // namespace malsched::support
