#pragma once

/// \file stats.hpp
/// Streaming and batch statistics used by the experiment harness: Welford
/// accumulators for online mean/variance, and a sample container with
/// quantiles for the paper-style result tables.

#include <cstddef>
#include <string>
#include <vector>

namespace malsched::support {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable and mergeable, so parallel workers can accumulate
/// locally and combine.
class Accumulator {
 public:
  void add(double x) noexcept;

  /// Combines another accumulator into this one (parallel reduction step).
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample with quantile queries.  Keeps all observations; intended for
/// experiment result vectors (10^4 - 10^6 points), not unbounded streams.
class Sample {
 public:
  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Linear-interpolated quantile, p in [0, 1].
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// One-line summary "n=... mean=... p50=... p99=... max=..." for logs.
  [[nodiscard]] std::string summary(int precision = 6) const;

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace malsched::support
