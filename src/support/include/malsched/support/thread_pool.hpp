#pragma once

/// \file thread_pool.hpp
/// A small work-stealing-free thread pool with a blocking parallel_for.
/// The Monte-Carlo sweeps in bench/ run millions of small LP solves; the pool
/// lets them scale with the host's cores while staying fully deterministic
/// (each index derives its own RNG stream, so results do not depend on the
/// execution interleaving).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace malsched::support {

/// Fixed-size thread pool.  Tasks are std::function<void()>; parallel_for
/// partitions an index range into contiguous chunks.
class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware_concurrency, minimum 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Schedules a single callable and returns the future of its result.  An
  /// exception thrown by the callable is captured and rethrown from
  /// future::get.  For one-off background jobs; bulk fan-out (the service
  /// batch executor included) goes through parallel_for.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs body(i) for every i in [begin, end), blocking until all complete.
  /// `body` must be safe to invoke concurrently for distinct indices.  If
  /// any invocation throws, the first exception (by completion time) is
  /// rethrown here after the whole range settles; chunks that have not
  /// started yet are skipped.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Runs body(chunk_begin, chunk_end) over a partition of [begin, end).
  /// Useful when per-chunk setup (RNG fork, local accumulator) matters.
  /// Same exception contract as parallel_for.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// The process-wide default pool (sized to the hardware).
  static ThreadPool& global();

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace malsched::support
