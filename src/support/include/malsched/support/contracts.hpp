#pragma once

/// \file contracts.hpp
/// Always-on contract checking in the spirit of the C++ Core Guidelines
/// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").  The checks abort with a
/// source location; they guard API boundaries and algorithm invariants and
/// are cheap relative to the numerical work they protect, so they stay
/// enabled in release builds.

namespace malsched::support {

/// Aborts the process with a diagnostic.  Used by the contract macros below;
/// never returns.
[[noreturn]] void contract_failure(const char* kind, const char* condition,
                                   const char* file, int line,
                                   const char* message) noexcept;

}  // namespace malsched::support

/// Precondition check: argument validation at function entry.
#define MALSCHED_EXPECTS(cond)                                                  \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::malsched::support::contract_failure("precondition", #cond, __FILE__,    \
                                            __LINE__, nullptr);                 \
    }                                                                           \
  } while (false)

/// Precondition check with an explanatory message.
#define MALSCHED_EXPECTS_MSG(cond, msg)                                         \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::malsched::support::contract_failure("precondition", #cond, __FILE__,    \
                                            __LINE__, (msg));                   \
    }                                                                           \
  } while (false)

/// Postcondition check: result validation before returning.
#define MALSCHED_ENSURES(cond)                                                  \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::malsched::support::contract_failure("postcondition", #cond, __FILE__,   \
                                            __LINE__, nullptr);                 \
    }                                                                           \
  } while (false)

/// Internal invariant check.
#define MALSCHED_ASSERT(cond)                                                   \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::malsched::support::contract_failure("invariant", #cond, __FILE__,       \
                                            __LINE__, nullptr);                 \
    }                                                                           \
  } while (false)
