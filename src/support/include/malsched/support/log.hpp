#pragma once

/// \file log.hpp
/// Leveled stderr logging.  Kept deliberately tiny: experiment binaries use
/// it for seed/parameter provenance lines, the library itself stays silent
/// below Warn.

#include <sstream>
#include <string>

namespace malsched::support {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits a single log line (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& out, const T& value, const Rest&... rest) {
  out << value;
  append_all(out, rest...);
}
}  // namespace detail

/// Streams all arguments into one log line: log(LogLevel::Info, "n=", n).
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) {
    return;
  }
  std::ostringstream out;
  detail::append_all(out, args...);
  log_message(level, out.str());
}

}  // namespace malsched::support
