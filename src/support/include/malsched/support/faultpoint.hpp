#pragma once

/// \file faultpoint.hpp
/// Deterministic fault injection at named protocol boundaries.
///
/// The shard layer's failure tests used to be racy by construction: a
/// killer thread sleeps ~150 ms and SIGKILLs a worker, hoping the victim
/// is mid-solve by then.  That proves "some death somewhere is survived",
/// not "death at THIS boundary is survived" — and the interesting HA bugs
/// live exactly at boundaries: the primary dying between journaling a
/// result and replying, a worker dying between solve and reply, a retry
/// crossing a death.  A fault point pins the boundary:
///
///     support::faultpoint("router.after_journal");
///
/// does nothing in production (one relaxed atomic load when disarmed), but
/// a test — or the CI smoke, via the MALSCHED_FAULT environment variable —
/// can arm it:
///
///     fault_arm("router.after_journal=kill@3");
///     MALSCHED_FAULT="worker.before_reply=stall:250" ./malsched_worker ...
///
/// and the process SIGKILLs itself at exactly the third crossing of that
/// boundary, with no sleeps and no races.  "Primary dies mid-journal"
/// becomes a pinned, reproducible test.
///
/// Spec grammar (comma-separated list):
///
///     <point>=<action>[:<arg>][@<nth>]
///
///   kill          SIGKILL this process at the trigger (never returns)
///   exit[:code]   _exit(code) at the trigger (default 1)
///   stall[:ms]    sleep ms (default 1000), then continue
///   dup           return FaultAction::Dup; the call site duplicates its
///                 protocol effect (e.g. a worker emits its reply twice)
///
/// `@nth` (default 1) triggers on exactly the nth crossing, counted
/// per-process from arming — deterministic, not "roughly the third".
/// Hit counters keep counting after the trigger so tests can assert a
/// boundary was crossed (faultpoint_hits).
///
/// Faults are inherited across fork (the registry is plain process
/// memory), which is how the router tests arm a fault in a worker: arm
/// before constructing the ShardRouter, and every forked worker carries
/// it.  Exec'd processes (malsched_worker) parse MALSCHED_FAULT from
/// their own environment on first use.
///
/// Thread-safe: boundaries fire from worker/writer threads; the disarmed
/// fast path is a single relaxed load.

#include <cstdint>
#include <string>

namespace malsched::support {

/// Environment variable parsed (once, on first faultpoint() crossing) when
/// nothing was armed programmatically.
inline constexpr const char* kFaultEnv = "MALSCHED_FAULT";

enum class FaultAction {
  None,   ///< boundary crossed, nothing armed (the production answer)
  Kill,   ///< never actually returned: the process is SIGKILLed
  Exit,   ///< never actually returned: the process _exit()s
  Stall,  ///< the stall already happened; caller just continues
  Dup,    ///< caller must duplicate its protocol effect once
};

/// Crosses the named boundary: bumps its hit counter and executes the
/// armed action, if any.  Kill/Exit do not return; Stall sleeps inline and
/// then returns Stall; Dup returns Dup and leaves the duplication to the
/// call site (only it knows what "duplicate" means at that boundary).
FaultAction faultpoint(const char* name);

/// Arms fault specs programmatically (see the grammar above), replacing
/// any armed set and resetting hit counters.  False (and arms nothing) on
/// a malformed spec.  An empty spec disarms.
bool fault_arm(const std::string& spec);

/// Disarms everything and resets hit counters.  Tests must call this in
/// teardown; a leaked armed fault would fire in the next test.
void fault_disarm();

/// Crossings of the named boundary since the last arm/disarm — counted
/// even when the point is not armed only if *something* is armed (the
/// disarmed fast path is a no-op by design).
std::uint64_t faultpoint_hits(const char* name);

}  // namespace malsched::support
