#pragma once

/// \file matrix.hpp
/// Dense row-major matrix of doubles.  Shared by the simplex tableau and the
/// column-schedule allocation grid; deliberately minimal (no expression
/// templates) so the numerical code stays easy to audit.

#include <cstddef>
#include <vector>

#include "malsched/support/contracts.hpp"

namespace malsched::support {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    MALSCHED_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    MALSCHED_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw pointer to row r (length cols()).
  [[nodiscard]] double* row(std::size_t r) noexcept {
    MALSCHED_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }
  [[nodiscard]] const double* row(std::size_t r) const noexcept {
    MALSCHED_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }

  void fill(double value) noexcept {
    for (double& v : data_) {
      v = value;
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace malsched::support
