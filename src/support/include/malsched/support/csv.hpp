#pragma once

/// \file csv.hpp
/// Minimal CSV writer used by the benchmark harness to dump raw experiment
/// series (one file per figure) next to the human-readable tables.

#include <fstream>
#include <string>
#include <vector>

namespace malsched::support {

/// Writes rows to a CSV file.  Fields are escaped per RFC 4180 when they
/// contain separators, quotes or newlines.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True when the underlying stream opened successfully.
  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

  void write_row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void write_row(const std::vector<double>& cells);

 private:
  void write_cells(const std::vector<std::string>& cells);
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace malsched::support
