#pragma once

/// \file float_compare.hpp
/// Tolerance-aware floating point comparisons.  All fluid quantities in the
/// library (volumes, rates, completion times) are doubles; every validator
/// and algorithmic comparison routes through these helpers so the numerical
/// policy lives in exactly one place (see DESIGN.md §7).

#include <algorithm>
#include <cmath>

namespace malsched::support {

/// Absolute/relative tolerance pair.  A quantity x is considered equal to y
/// when |x - y| <= abs + rel * max(|x|, |y|).
struct Tolerance {
  double abs = 1e-9;
  double rel = 1e-9;

  /// The slack granted when comparing values of magnitude `scale`.
  [[nodiscard]] double slack(double scale) const noexcept {
    return abs + rel * std::fabs(scale);
  }
};

/// True when a and b are equal within tol.
[[nodiscard]] inline bool approx_eq(double a, double b,
                                    Tolerance tol = {}) noexcept {
  return std::fabs(a - b) <= tol.slack(std::max(std::fabs(a), std::fabs(b)));
}

/// True when a <= b within tol (i.e. a is not significantly greater).
[[nodiscard]] inline bool approx_le(double a, double b,
                                    Tolerance tol = {}) noexcept {
  return a <= b + tol.slack(std::max(std::fabs(a), std::fabs(b)));
}

/// True when a >= b within tol.
[[nodiscard]] inline bool approx_ge(double a, double b,
                                    Tolerance tol = {}) noexcept {
  return approx_le(b, a, tol);
}

/// True when a is indistinguishable from zero within tol.abs.
[[nodiscard]] inline bool approx_zero(double a, Tolerance tol = {}) noexcept {
  return std::fabs(a) <= tol.abs;
}

/// True when a is strictly less than b beyond the tolerance slack.
[[nodiscard]] inline bool definitely_less(double a, double b,
                                          Tolerance tol = {}) noexcept {
  return a < b - tol.slack(std::max(std::fabs(a), std::fabs(b)));
}

/// True when a is strictly greater than b beyond the tolerance slack.
[[nodiscard]] inline bool definitely_greater(double a, double b,
                                             Tolerance tol = {}) noexcept {
  return definitely_less(b, a, tol);
}

/// Clamps tiny negative values (numerical noise) to zero, leaving genuine
/// negatives untouched so contract checks can still catch real bugs.
[[nodiscard]] inline double snap_nonneg(double a, Tolerance tol = {}) noexcept {
  return (a < 0.0 && a >= -tol.abs) ? 0.0 : a;
}

}  // namespace malsched::support
