#pragma once

/// \file table.hpp
/// Plain-text table rendering for benchmark reports.  Every experiment binary
/// prints its paper-style result rows through this formatter so outputs are
/// consistent and easy to diff against EXPERIMENTS.md.

#include <string>
#include <vector>

namespace malsched::support {

/// Column alignment inside a TextTable.
enum class Align { Left, Right };

/// A simple monospace table: fixed set of columns, rows of strings, rendered
/// with a header rule.  Cell contents are caller-formatted (see fmt_double).
class TextTable {
 public:
  struct Column {
    std::string name;
    Align align = Align::Right;
  };

  explicit TextTable(std::vector<Column> columns);

  /// Appends one row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<Column> columns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Formats a double with fixed precision, trimming to "-" for NaN sentinels.
[[nodiscard]] std::string fmt_double(double v, int precision = 4);

/// Formats a ratio like "1.2345" or "inf".
[[nodiscard]] std::string fmt_ratio(double v, int precision = 4);

/// Formats an integer count.
[[nodiscard]] std::string fmt_int(long long v);

}  // namespace malsched::support
