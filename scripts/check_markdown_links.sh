#!/usr/bin/env bash
# Markdown link checker for CI (no external tools: bash + grep + sed).
#
# Two checks:
#   1. every intra-repo link target `[text](path)` in a tracked .md file
#      resolves relative to that file (fragments are stripped; http(s)/
#      mailto/anchor-only links are skipped),
#   2. every page under docs/ is referenced from README.md, so new docs
#      cannot silently become orphans.
#
# Exits non-zero listing every broken link / orphaned doc.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

if command -v git > /dev/null && git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  mapfile -t md_files < <(git ls-files '*.md')
else
  mapfile -t md_files < <(find . -name '*.md' \
    -not -path './build*' -not -path './.git/*' | sed 's|^\./||')
fi

for file in "${md_files[@]}"; do
  dir=$(dirname "$file")
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"  # drop the fragment; the file must still exist
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $file -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$file" \
           | sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/' || true)
done

for doc in docs/*.md; do
  [ -e "$doc" ] || continue
  if ! grep -q "$doc" README.md; then
    echo "ORPHANED DOC: $doc is not referenced from README.md" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "markdown link check FAILED" >&2
  exit 1
fi
echo "markdown link check OK (${#md_files[@]} files)"
