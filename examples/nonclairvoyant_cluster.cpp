// Non-clairvoyant cluster scheduling: job sizes are unknown until they
// finish.  Compares WDEQ against DEQ (weight-blind), weighted round-robin
// (no surplus redistribution) and rigid FCFS on a synthetic mixed workload,
// reporting each policy's ratio to the clairvoyant lower bound — WDEQ's
// ratio is guaranteed <= 2 by Theorem 4.
//
// Build & run:  ./examples/nonclairvoyant_cluster [seed]

#include <cstdio>
#include <cstdlib>

#include "malsched/core/bounds.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/wdeq.hpp"
#include "malsched/sim/engine.hpp"
#include "malsched/sim/metrics.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  support::Rng rng(seed);
  std::printf("Non-clairvoyant cluster study (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));

  const int trials = 200;
  struct Row {
    std::string name;
    support::Accumulator ratio;
    support::Accumulator stretch;
    support::Accumulator fairness;
  };
  std::vector<Row> rows;
  for (const auto& policy : sim::all_policies()) {
    rows.push_back({policy->name(), {}, {}, {}});
  }

  for (int trial = 0; trial < trials; ++trial) {
    core::GeneratorConfig config;
    config.family = trial % 2 == 0 ? core::Family::HeavyTailVolumes
                                   : core::Family::Uniform;
    config.num_tasks = 12;
    config.processors = 16.0;
    const auto inst = core::generate(config, rng);
    // Strongest certificate available without solving to optimality:
    // max(A, H) plus the Lemma-1 mixed bound instantiated with WDEQ's own
    // full/limited volume split (any split yields a valid lower bound).
    const auto wdeq_run = core::run_wdeq(inst);
    const double lb =
        std::max(core::best_simple_lower_bound(inst),
                 core::mixed_lower_bound(inst, wdeq_run.limited_volume));

    const auto policies = sim::all_policies();
    for (std::size_t k = 0; k < policies.size(); ++k) {
      const auto result = sim::run_policy(inst, *policies[k]);
      rows[k].ratio.add(result.weighted_completion / lb);
      const auto metrics = sim::compute_metrics(inst, result.schedule);
      rows[k].stretch.add(metrics.mean_stretch);
      rows[k].fairness.add(metrics.jain_fairness);
    }
  }

  support::TextTable table({{"policy", support::Align::Left},
                            {"mean ratio", support::Align::Right},
                            {"max ratio", support::Align::Right},
                            {"mean stretch", support::Align::Right},
                            {"Jain fairness", support::Align::Right},
                            {"guarantee", support::Align::Right}});
  for (const auto& row : rows) {
    table.add_row({row.name, support::fmt_double(row.ratio.mean()),
                   support::fmt_double(row.ratio.max()),
                   support::fmt_double(row.stretch.mean(), 2),
                   support::fmt_double(row.fairness.mean(), 3),
                   row.name == "wdeq" ? "2.0 (Thm 4)" : "-"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Ratios are vs. the clairvoyant lower bound max(A, H, "
              "mixed[Lemma 1]), so\nthey overstate the true gap to OPT; "
              "WDEQ staying under 2 confirms\nTheorem 4 on %d random "
              "instances.\n",
              trials);
  return 0;
}
