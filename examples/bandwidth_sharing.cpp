// The paper's Figure 1 scenario: a master distributes code archives to
// heterogeneous workers over a shared uplink; each worker starts crunching
// tasks the moment its download completes.  Maximizing tasks processed by a
// horizon T is exactly minimizing the weighted mean completion time of the
// transfers — this example shows the equivalence numerically and compares
// bandwidth-sharing policies.
//
// Build & run:  ./examples/bandwidth_sharing

#include <cstdio>

#include "malsched/bwshare/network.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/sim/policy.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

int main() {
  // Server uplink: 10 Gbit/s (scaled units).  Workers with varying download
  // links, code sizes and processing power.
  const bwshare::Scenario scenario(
      10.0, {
                {20.0, 4.0, 2.0, "gpu-box"},     // big code, fast link
                {5.0, 1.0, 5.0, "cluster-a"},    // slow link, high throughput
                {8.0, 3.0, 1.0, "edge-1"},
                {2.0, 2.0, 4.0, "edge-2"},       // tiny code, strong worker
                {12.0, 2.5, 0.5, "archive"},
            });
  const double horizon = 30.0;

  std::printf("Figure-1 scenario: server bandwidth %.1f, %zu workers, "
              "horizon T = %.1f\n\n",
              scenario.server_bandwidth(), scenario.size(), horizon);

  support::TextTable table({{"policy", support::Align::Left},
                            {"sum wC", support::Align::Right},
                            {"throughput(T)", support::Align::Right},
                            {"W*T - sum wC", support::Align::Right}});

  double total_rate = 0.0;
  for (const auto& w : scenario.workers()) {
    total_rate += w.processing_rate;
  }

  for (const auto& policy : sim::all_policies()) {
    const auto result = bwshare::distribute(scenario, *policy);
    table.add_row({result.policy,
                   support::fmt_double(result.weighted_completion),
                   support::fmt_double(
                       result.throughput(horizon, scenario.workers())),
                   support::fmt_double(total_rate * horizon -
                                       result.weighted_completion)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Note: throughput(T) == W*T - sum wC whenever every transfer "
              "finishes by T\n(the paper's reduction); the last two columns "
              "agreeing demonstrates it.\n\n");

  const auto inst = scenario.to_instance();
  const auto opt = core::optimal_by_enumeration(inst);
  std::printf("Optimal sum wC (LP over all completion orders): %.4f\n",
              opt.objective);
  std::printf("Best achievable throughput at T: %.4f (upper bound %.4f)\n",
              total_rate * horizon - opt.objective,
              bwshare::throughput_upper_bound(scenario, horizon));
  return 0;
}
