// Interactive explorer for the paper's two conjectures:
//   Conjecture 12 — some greedy order is optimal for every instance;
//   Conjecture 13 — on §V-B homogeneous instances, a greedy order and its
//                   reverse have the same total completion time.
//
// Usage:
//   ./examples/conjecture_explorer c12 <n> <P> <count> [seed]
//   ./examples/conjecture_explorer c13 <n> <count> [seed]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/homogeneous.hpp"
#include "malsched/core/io.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/numeric/rational.hpp"
#include "malsched/support/stats.hpp"

using namespace malsched;

namespace {

int explore_c12(std::size_t n, double p, int count, std::uint64_t seed) {
  std::printf("Conjecture 12: best greedy == optimal on %d random instances "
              "(n=%zu, P=%.1f, seed %llu)\n",
              count, n, p, static_cast<unsigned long long>(seed));
  if (n > 6) {
    std::printf("n > 6 makes the LP enumeration very slow; refusing.\n");
    return 1;
  }
  support::Rng rng(seed);
  support::Sample gaps;
  double worst = 0.0;
  core::Instance worst_inst(1.0, {{1.0, 1.0, 1.0}});
  for (int trial = 0; trial < count; ++trial) {
    core::GeneratorConfig config;
    config.family = core::Family::Uniform;
    config.num_tasks = n;
    config.processors = p;
    const auto inst = core::generate(config, rng);
    const auto greedy = core::best_greedy_exhaustive(inst);
    const auto opt = core::optimal_by_enumeration(inst);
    const double gap = (greedy.objective - opt.objective) /
                       std::max(1e-12, opt.objective);
    gaps.add(gap);
    if (gap > worst) {
      worst = gap;
      worst_inst = inst;
    }
  }
  std::printf("relative gap: %s\n", gaps.summary(3).c_str());
  if (worst > 1e-6) {
    std::printf("\nLargest gap %.3e came from:\n%s", worst,
                core::format_instance(worst_inst).c_str());
    std::printf("(a genuine counterexample would need gap >> LP tolerance)\n");
  } else {
    std::printf("no instance separated best-greedy from optimal beyond LP "
                "tolerance — consistent with Conjecture 12.\n");
  }
  return 0;
}

int explore_c13(std::size_t n, int count, std::uint64_t seed) {
  std::printf("Conjecture 13: greedy(order) == greedy(reversed order) on "
              "homogeneous instances, checked EXACTLY (rationals); n=%zu, "
              "%d instances, seed %llu\n",
              n, count, static_cast<unsigned long long>(seed));
  support::Rng rng(seed);
  int violations = 0;
  for (int trial = 0; trial < count; ++trial) {
    std::vector<numeric::Rational> delta;
    for (std::size_t i = 0; i < n; ++i) {
      const long long den = rng.uniform_int(2, 32);
      const long long num = rng.uniform_int((den + 1) / 2, den);
      delta.emplace_back(num, den);
    }
    const auto order = rng.permutation(n);
    if (!core::reversal_symmetric_exact(delta, order)) {
      ++violations;
      std::printf("VIOLATION at trial %d: deltas", trial);
      for (const auto& d : delta) {
        std::printf(" %s", d.to_string().c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("%d/%d orders reversal-symmetric (exact arithmetic)\n",
              count - violations, count);
  return violations == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "c12" && argc >= 5) {
    const auto n = static_cast<std::size_t>(std::atoi(argv[2]));
    const double p = std::atof(argv[3]);
    const int count = std::atoi(argv[4]);
    const std::uint64_t seed =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
    return explore_c12(n, p, count, seed);
  }
  if (mode == "c13" && argc >= 4) {
    const auto n = static_cast<std::size_t>(std::atoi(argv[2]));
    const int count = std::atoi(argv[3]);
    const std::uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    return explore_c13(n, count, seed);
  }
  std::printf("usage:\n"
              "  %s c12 <n> <P> <count> [seed]   # greedy-vs-optimal gaps\n"
              "  %s c13 <n> <count> [seed]       # exact reversal symmetry\n",
              argv[0], argv[0]);
  // Default demo run so the binary does something useful bare.
  std::printf("\nRunning default demo (c12 with n=4, P=2, 25 instances):\n");
  return explore_c12(4, 2.0, 25, 7);
}
