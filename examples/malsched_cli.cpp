// malsched_cli: run the library's schedulers on an instance file.
//
//   ./examples/malsched_cli schedule <file> [--policy wdeq|deq|wrr|fifo-rigid|smith-greedy]
//   ./examples/malsched_cli bounds   <file>
//   ./examples/malsched_cli optimal  <file>        (n <= 8)
//   ./examples/malsched_cli lmax     <file> d1 d2 ...
//
// Instance file format (see malsched/core/io.hpp):
//   processors 4
//   task <volume> <width> <weight>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "malsched/core/bounds.hpp"
#include "malsched/core/io.hpp"
#include "malsched/core/makespan.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/sim/engine.hpp"

using namespace malsched;

namespace {

int usage(const char* prog) {
  std::printf("usage: %s {schedule|bounds|optimal|lmax} <instance-file> ...\n",
              prog);
  return 64;
}

std::unique_ptr<sim::AllocationPolicy> policy_by_name(const std::string& name) {
  for (auto& policy : sim::all_policies()) {
    if (policy->name() == name) {
      return std::move(policy);
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage(argv[0]);
  }
  const std::string command = argv[1];
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 66;
  }
  std::string error;
  const auto instance = core::read_instance(in, &error);
  if (!instance) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 65;
  }

  if (command == "schedule") {
    std::string policy_name = "wdeq";
    for (int i = 3; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--policy") == 0) {
        policy_name = argv[i + 1];
      }
    }
    const auto policy = policy_by_name(policy_name);
    if (!policy) {
      std::fprintf(stderr, "unknown policy %s\n", policy_name.c_str());
      return 64;
    }
    const auto result = sim::run_policy(*instance, *policy);
    std::printf("policy   : %s\n", policy->name().c_str());
    std::printf("sum wC   : %.6f\n", result.weighted_completion);
    std::printf("makespan : %.6f\n", result.schedule.makespan());
    std::printf("\n%s", core::render_gantt(*instance, result.schedule).c_str());
    return 0;
  }
  if (command == "bounds") {
    std::printf("A(I) squashed area : %.6f\n",
                core::squashed_area_bound(*instance));
    std::printf("H(I) height        : %.6f\n", core::height_bound(*instance));
    std::printf("optimal makespan   : %.6f\n",
                core::optimal_makespan(*instance));
    return 0;
  }
  if (command == "optimal") {
    if (instance->size() > 8) {
      std::fprintf(stderr, "optimal enumeration limited to n <= 8\n");
      return 64;
    }
    const auto opt = core::optimal_by_enumeration(*instance);
    std::printf("optimal sum wC : %.6f\n", opt.objective);
    std::printf("order          :");
    for (const auto t : opt.order) {
      std::printf(" T%zu", t);
    }
    std::printf("\n");
    return 0;
  }
  if (command == "lmax") {
    if (static_cast<std::size_t>(argc - 3) != instance->size()) {
      std::fprintf(stderr, "need %zu due dates\n", instance->size());
      return 64;
    }
    std::vector<double> due;
    for (int i = 3; i < argc; ++i) {
      due.push_back(std::atof(argv[i]));
    }
    const auto result = core::minimize_lmax(*instance, due);
    std::printf("minimal Lmax : %.6f (%zu bisection probes)\n", result.lmax,
                result.iterations);
    return 0;
  }
  return usage(argv[0]);
}
