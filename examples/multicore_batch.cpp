// Clairvoyant batch scheduling on a multicore node: compute the optimal
// completion order (LP enumeration), normalize it with Water-Filling
// (Algorithm 2), convert to an integer per-core assignment (Theorem 3) and
// report the preemption counts against the paper's n / 3n bounds.
//
// Build & run:  ./examples/multicore_batch

#include <cstdio>

#include "malsched/core/assignment.hpp"
#include "malsched/core/io.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

int main() {
  // 8-core node, integral widths (required for the integer assignment).
  const core::Instance instance(8.0, {
                                         {12.0, 4.0, 2.0},
                                         {6.0, 8.0, 5.0},
                                         {9.0, 2.0, 1.0},
                                         {3.0, 3.0, 4.0},
                                         {10.0, 6.0, 1.5},
                                         {2.0, 1.0, 3.0},
                                     });
  std::printf("Multicore batch: %s\n\n", instance.describe().c_str());

  core::OptimalOptions options;
  options.want_schedule = true;
  const auto opt = core::optimal_by_enumeration(instance, options);
  std::printf("Optimal sum wC = %.4f (searched %zu completion orders)\n",
              opt.objective, opt.orders_tried);

  // Normalize: Water-Filling on the optimal completion times gives the
  // canonical schedule with the preemption guarantees of Section IV.
  const auto wf = core::water_fill(instance, opt.schedule.completions());
  if (!wf.feasible) {
    std::printf("unexpected: WF rejected optimal completion times\n");
    return 1;
  }

  support::TextTable table({{"task", support::Align::Left},
                            {"volume", support::Align::Right},
                            {"width", support::Align::Right},
                            {"weight", support::Align::Right},
                            {"completes", support::Align::Right}});
  for (std::size_t i = 0; i < instance.size(); ++i) {
    table.add_row({"T" + std::to_string(i),
                   support::fmt_double(instance.task(i).volume, 1),
                   support::fmt_double(instance.task(i).width, 0),
                   support::fmt_double(instance.task(i).weight, 1),
                   support::fmt_double(wf.schedule.completion(i))});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto assignment = core::assign_processors(instance, wf.schedule);
  const auto check = assignment.validate(instance);
  std::printf("Integer core assignment valid: %s\n",
              check.valid ? "yes" : check.message.c_str());

  const auto stats = core::count_preemptions(instance, wf.schedule, assignment);
  const std::size_t n = instance.size();
  std::printf("\nPreemption accounting (n = %zu):\n", n);
  std::printf("  fractional rate changes : %zu   (Theorem 9 bound: %zu)\n",
              stats.fractional_changes, n);
  std::printf("  integer count changes   : %zu   (Theorem 10 bound: %zu)\n",
              stats.integer_changes, 3 * n);
  std::printf("  realized core losses    : %zu\n", stats.processor_losses);
  std::printf("  realized core gains     : %zu\n", stats.processor_gains);

  // Per-core timeline.
  std::printf("\nPer-core timeline (first 3 cores):\n");
  for (std::size_t p = 0; p < assignment.num_processors() && p < 3; ++p) {
    std::printf("  core %zu:", p);
    for (const auto& piece : assignment.processor(p)) {
      std::printf(" [%.2f-%.2f T%zu]", piece.begin, piece.end, piece.task);
    }
    std::printf("\n");
  }

  std::printf("\nProcessor Gantt (digits = task ids, '.' = idle):\n%s",
              core::render_processor_gantt(assignment).c_str());
  return 0;
}
