// malsched_service: batch scheduling service front door (v2 Scheduler,
// optionally sharded across worker processes).
//
//   ./examples/malsched_service <batch-file> [--threads N] [--repeat R]
//                               [--cache-capacity W] [--cache-ttl S]
//                               [--no-cache] [--queue-capacity N] [--fifo]
//                               [--shards N] [--workers host:port,...]
//                               [--replication R] [--stats]
//   ./examples/malsched_service --solvers
//
// Batch file format (see malsched/service/service.hpp):
//
//   instance small
//   processors 4
//   task 2.0 2 1.0
//   task 1.5 1 0.5
//   end
//   generate big heavy-tail-volumes 200 16 42
//   include common_instances.msb
//   weight 4                 # sticky: priority weight of later solves
//   deadline 0.5             # sticky: per-request latency budget (seconds);
//                            # 'deadline none' clears it
//   solve wdeq small
//   solve optimal small
//   solve wdeq big
//
// Relative `include` paths resolve against the batch file's directory.
// Per-request results go to stdout (deterministic: identical bytes for any
// --threads value AND any --shards value; `deadline` budgets are wall-clock
// dependent by nature); failures carry their typed error code.
// Latency/cache telemetry goes to stderr.  --cache-capacity counts weight
// units (~one per completion time), not entries; --cache-ttl ages entries
// out at lookup.  Admission is the weighted-priority queue by default —
// --fifo restores strict arrival order (the A/B the bench measures).
//
// --stats appends a cache-statistics block to the stderr telemetry: the
// full counter set (hits, misses, LRU evictions, TTL expirations, weight)
// for the run — per worker when sharded, so a single shard quietly aging
// out its arc (expired climbing) is visible instead of being summed away
// in the fleet aggregate.
//
// --shards N forks N worker processes and partitions the canonical key
// space across them with consistent hashing (docs/OPERATIONS.md): every
// worker runs its own Scheduler (--threads each) and its own cache shard.
// --replication R primes each instance on R ring owners so a worker death
// mid-run fails over — and, with the idempotency tokens of wire protocol
// v2, in-flight requests are safely *retried* on a replica.  The fork
// happens before any in-process scheduler exists, which is the documented
// spawning contract.
//
// --workers host:port,... is the multi-host variant of --shards: instead
// of forking, dial one `malsched_worker --listen` process per endpoint
// (one shard each, versioned handshake on connect).  Worker Scheduler
// flags are configured on each worker's own command line in this mode.
// When sharded, --stats also prints the router's transport counters
// (handshakes, dead peers, retries replayed) — the fleet-health view.
//
// Router HA (docs/OPERATIONS.md, "Router HA"): --standby host:port makes
// this process a *primary* that replicates its journal (membership, primed
// set, in-flight tokens, final results) to a hot standby at that address.
// --standby-listen host:port makes it the *standby*: it prints
// `standby listening <host> <port>`, accepts the primary's replication
// connection, mirrors the journal, and — if the primary dies or goes
// silent past --heartbeat-timeout — takes over the --workers fleet and
// finishes the batch, emitting journaled results verbatim and replaying
// in-flight requests under their existing idempotency tokens.  The client
// stream stays byte-identical to a single-process run either way.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "malsched/net/socket.hpp"
#include "malsched/service/service.hpp"
#include "malsched/shard/router.hpp"
#include "malsched/shard/standby.hpp"

using namespace malsched;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <batch-file> [--threads N] [--repeat R] "
               "[--cache-capacity W] [--cache-ttl S] [--no-cache] "
               "[--queue-capacity N] [--fifo] [--shards N] "
               "[--workers host:port,...] [--replication R] "
               "[--data-plane auto|shm|socketpair] [--stats]\n"
               "       %s <batch-file> --workers ... --standby host:port "
               "[--heartbeat-interval MS]\n"
               "       %s <batch-file> --workers ... --standby-listen "
               "host:port [--heartbeat-timeout MS]\n"
               "       %s --solvers\n",
               prog, prog, prog, prog);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  const auto registry = service::SolverRegistry::with_default_solvers();

  if (argc >= 2 && std::strcmp(argv[1], "--solvers") == 0) {
    for (const auto& name : registry.names()) {
      const auto* info = registry.find(name);
      std::printf("%-18s %s%s\n", name.c_str(), info->description.c_str(),
                  info->cancellable ? "  [cancellable]" : "");
    }
    return 0;
  }
  if (argc < 2) {
    return usage(argv[0]);
  }

  service::ServiceOptions options;
  std::size_t shards = 0;       // 0 = single-process serving
  std::vector<net::Endpoint> tcp_workers;  // --workers: dial, don't fork
  std::size_t replication = 1;  // instance fan-out when sharded
  // --data-plane: how frames reach forked workers (shared-memory rings by
  // default, with automatic socketpair fallback; see router.hpp).
  shard::DataPlaneMode data_plane = shard::DataPlaneMode::Auto;
  bool show_stats = false;      // --stats: cache counter block on stderr
  // Router HA: --standby makes this a replicating primary; --standby-listen
  // makes it the hot standby (mutually exclusive).
  std::optional<net::Endpoint> standby;
  std::optional<net::Endpoint> standby_listen;
  std::chrono::milliseconds heartbeat_interval{100};
  std::chrono::milliseconds heartbeat_timeout{2000};
  // Numeric flags are range-checked: a stray "--threads -1" must not wrap
  // to four billion workers.
  const auto parse_count = [](const char* text, long max_value, long* out) {
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < 0 || value > max_value) {
      return false;
    }
    *out = value;
    return true;
  };
  for (int i = 2; i < argc; ++i) {
    long value = 0;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 256, &value)) {
        return usage(argv[0]);
      }
      options.threads = static_cast<unsigned>(value);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1000000, &value)) {
        return usage(argv[0]);
      }
      options.repeat = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1000000000, &value)) {
        return usage(argv[0]);
      }
      options.cache_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--cache-ttl") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const double seconds = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(seconds >= 0.0)) {
        return usage(argv[0]);
      }
      options.cache_ttl_seconds = seconds;
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1000000, &value) || value == 0) {
        return usage(argv[0]);
      }
      options.queue_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 256, &value)) {
        return usage(argv[0]);
      }
      shards = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      const auto endpoints = net::parse_endpoint_list(argv[++i]);
      if (!endpoints) {
        std::fprintf(stderr,
                     "bad --workers list '%s' (want host:port,host:port)\n",
                     argv[i]);
        return usage(argv[0]);
      }
      tcp_workers = *endpoints;
    } else if (std::strcmp(argv[i], "--replication") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 256, &value) || value == 0) {
        return usage(argv[0]);
      }
      replication = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--data-plane") == 0 && i + 1 < argc) {
      const char* plane = argv[++i];
      if (std::strcmp(plane, "auto") == 0) {
        data_plane = shard::DataPlaneMode::Auto;
      } else if (std::strcmp(plane, "shm") == 0) {
        data_plane = shard::DataPlaneMode::Shm;
      } else if (std::strcmp(plane, "socketpair") == 0) {
        data_plane = shard::DataPlaneMode::Socketpair;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--standby") == 0 && i + 1 < argc) {
      standby = net::parse_endpoint(argv[++i]);
      if (!standby) {
        std::fprintf(stderr, "bad --standby endpoint '%s'\n", argv[i]);
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--standby-listen") == 0 && i + 1 < argc) {
      standby_listen = net::parse_endpoint(argv[++i]);
      if (!standby_listen) {
        std::fprintf(stderr, "bad --standby-listen endpoint '%s'\n", argv[i]);
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--heartbeat-interval") == 0 &&
               i + 1 < argc) {
      if (!parse_count(argv[++i], 3600000, &value) || value == 0) {
        return usage(argv[0]);
      }
      heartbeat_interval = std::chrono::milliseconds(value);
    } else if (std::strcmp(argv[i], "--heartbeat-timeout") == 0 &&
               i + 1 < argc) {
      if (!parse_count(argv[++i], 3600000, &value) || value == 0) {
        return usage(argv[0]);
      }
      heartbeat_timeout = std::chrono::milliseconds(value);
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      options.use_cache = false;
    } else if (std::strcmp(argv[i], "--fifo") == 0) {
      options.fifo_admission = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 66;
  }
  std::string error;
  service::BatchReadOptions read_options;
  read_options.base_dir =
      std::filesystem::path(argv[1]).parent_path().string();
  const auto batch = service::read_batch(in, &error, read_options);
  if (!batch) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 65;
  }

  const auto print_cache_stats = [](const char* label,
                                    const service::CacheStats& stats) {
    std::fprintf(stderr,
                 "cache%-9s: hits=%llu misses=%llu evictions=%llu "
                 "expired=%llu admitted=%llu rejected=%llu "
                 "entries=%zu weight=%zu/%zu\n",
                 label, static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.evictions),
                 static_cast<unsigned long long>(stats.expired),
                 static_cast<unsigned long long>(stats.admitted),
                 static_cast<unsigned long long>(stats.rejected),
                 stats.entries, stats.weight, stats.capacity);
  };

  if (standby_listen) {
    // --- hot standby: mirror the primary's journal, take over on death ---
    if (tcp_workers.empty() || standby) {
      std::fprintf(stderr,
                   "--standby-listen needs --workers (the fleet to adopt) "
                   "and excludes --standby\n");
      return usage(argv[0]);
    }
    std::string net_error;
    std::uint16_t bound_port = 0;
    const int listen_fd =
        net::tcp_listen(*standby_listen, &net_error, &bound_port);
    if (listen_fd < 0) {
      std::fprintf(stderr, "standby listen failed: %s\n", net_error.c_str());
      return 71;
    }
    // Scrape line for harnesses (same idiom as malsched_worker): the bound
    // port matters because --standby-listen host:0 is how tests avoid
    // port collisions.
    std::printf("standby listening %s %u\n", standby_listen->host.c_str(),
                static_cast<unsigned>(bound_port));
    std::fflush(stdout);
    // Bounded accept so a primary that never starts cannot hang a CI job
    // forever; two minutes dwarfs any real startup race.
    const int primary_fd = net::tcp_accept(
        listen_fd, std::chrono::milliseconds(120000), &net_error);
    ::close(listen_fd);
    if (primary_fd < 0) {
      std::fprintf(stderr, "standby accept failed: %s\n", net_error.c_str());
      return 71;
    }
    shard::StandbyOptions standby_options;
    standby_options.heartbeat_timeout = heartbeat_timeout;
    standby_options.router.tcp_workers = tcp_workers;
    standby_options.router.replication = replication;
    standby_options.router.worker = options;
    const auto outcome =
        shard::run_standby(primary_fd, registry, *batch, standby_options);
    ::close(primary_fd);
    const bool took_over =
        outcome.status == shard::StandbyOutcome::Status::TookOver;
    if (took_over) {
      service::write_results(std::cout, outcome.report);
      std::cerr << service::format_telemetry(outcome.report);
    }
    if (show_stats) {
      std::fprintf(
          stderr,
          "standby        : takeover=%d journal_records=%llu "
          "heartbeats=%llu results_from_journal=%llu inflight_replayed=%llu "
          "solved_fresh=%llu\n",
          took_over ? 1 : 0,
          static_cast<unsigned long long>(outcome.state.records),
          static_cast<unsigned long long>(outcome.state.heartbeats),
          static_cast<unsigned long long>(outcome.results_from_journal),
          static_cast<unsigned long long>(outcome.replayed_in_flight),
          static_cast<unsigned long long>(outcome.solved_fresh));
      std::fprintf(
          stderr,
          "transport      : handshakes=%llu handshake_failures=%llu "
          "dead_peers=%llu retries_replayed=%llu duplicates_dropped=%llu "
          "shm_fallbacks=%llu\n",
          static_cast<unsigned long long>(outcome.transport.handshakes),
          static_cast<unsigned long long>(
              outcome.transport.handshake_failures),
          static_cast<unsigned long long>(outcome.transport.dead_peers),
          static_cast<unsigned long long>(outcome.transport.retries_replayed),
          static_cast<unsigned long long>(
              outcome.transport.duplicates_dropped),
          static_cast<unsigned long long>(outcome.transport.shm_fallbacks));
    }
    switch (outcome.status) {
      case shard::StandbyOutcome::Status::PrimaryCompleted:
        std::fprintf(stderr, "standby: primary completed; standing down\n");
        return 0;
      case shard::StandbyOutcome::Status::TookOver:
        return 0;
      case shard::StandbyOutcome::Status::SplitBrain:
        std::fprintf(stderr, "standby: %s\n", outcome.error.c_str());
        return 75;  // EX_TEMPFAIL: the primary may still be serving
      case shard::StandbyOutcome::Status::ProtocolError:
        break;
    }
    std::fprintf(stderr, "standby: %s\n", outcome.error.c_str());
    return 76;  // EX_PROTOCOL
  }

  service::ServiceReport report;
  if (shards > 0 || !tcp_workers.empty()) {
    // Sharded serving: fork (or dial) the worker fleet *now*, while this
    // process is still single-threaded, then stream the batch through the
    // ring.
    shard::RouterOptions router_options;
    router_options.shards = shards;
    router_options.tcp_workers = tcp_workers;
    router_options.replication = replication;
    router_options.data_plane = data_plane;
    router_options.worker = options;  // same options, served per worker
    router_options.standby = standby;
    router_options.heartbeat_interval = heartbeat_interval;
    shard::ShardRouter router(registry, router_options);
    if (standby && !router.standby_attached()) {
      // Serving continues without HA; the operator asked for a standby and
      // must see that it is not there.
      std::fprintf(stderr, "warning: %s\n", router.standby_error().c_str());
    }
    shard::RouterRunOptions run_options;
    run_options.repeat = options.repeat;
    report = router.run(*batch, run_options);
    service::write_results(std::cout, report);
    std::cerr << service::format_telemetry(report);
    if (show_stats) {
      // Per-worker breakdown: the run's aggregate sums the shards, which
      // hides a single worker quietly aging out its arc via the TTL.
      for (std::size_t w = 0; w < router.shard_count(); ++w) {
        const auto stats = router.worker_cache_stats(w);
        const std::string label = "[" + std::to_string(w) + "]";
        if (stats) {
          print_cache_stats(label.c_str(), *stats);
        } else {
          std::fprintf(stderr, "cache%-9s: worker dead\n", label.c_str());
        }
      }
      // Data-plane counters: which plane each worker actually got (a shm
      // request that fell back shows up as "socketpair" + shm_fallbacks
      // below), how much crossed it, and whether the rings ever parked.
      for (std::size_t w = 0; w < router.shard_count(); ++w) {
        const std::string label = "[" + std::to_string(w) + "]";
        const auto plane = router.data_plane_stats(w);
        if (!plane) {
          std::fprintf(stderr, "plane%-9s: worker dead\n", label.c_str());
          continue;
        }
        std::fprintf(stderr,
                     "plane%-9s: %s frames_out=%llu bytes_out=%llu "
                     "frames_in=%llu bytes_in=%llu depth=%zu/%zu "
                     "sleeps=%llu/%llu wakes=%llu\n",
                     label.c_str(), plane->plane,
                     static_cast<unsigned long long>(plane->frames_out),
                     static_cast<unsigned long long>(plane->bytes_out),
                     static_cast<unsigned long long>(plane->frames_in),
                     static_cast<unsigned long long>(plane->bytes_in),
                     plane->request_depth, plane->response_depth,
                     static_cast<unsigned long long>(plane->producer_sleeps),
                     static_cast<unsigned long long>(plane->consumer_sleeps),
                     static_cast<unsigned long long>(plane->wakes));
      }
      // Fleet mean over *alive* workers: a dead worker reports no stats,
      // so dividing by the configured count would silently understate
      // per-worker load the moment one dies.  The alive=a/c prefix makes
      // the divisor auditable.
      const auto fleet = router.fleet_cache_summary();
      if (fleet.alive > 0) {
        const double alive = static_cast<double>(fleet.alive);
        std::fprintf(stderr,
                     "cache[mean]    : alive=%zu/%zu hits=%.2f misses=%.2f "
                     "entries=%.2f weight=%.2f\n",
                     fleet.alive, fleet.configured,
                     static_cast<double>(fleet.total.hits) / alive,
                     static_cast<double>(fleet.total.misses) / alive,
                     static_cast<double>(fleet.total.entries) / alive,
                     static_cast<double>(fleet.total.weight) / alive);
      } else {
        std::fprintf(stderr, "cache[mean]    : alive=0/%zu (fleet down)\n",
                     fleet.configured);
      }
      // Transport counters: the fleet-health view — how many peers passed
      // the handshake, how many died, how much work was retried.
      const shard::TransportStats& transport = router.transport_stats();
      std::fprintf(stderr,
                   "transport      : handshakes=%llu handshake_failures=%llu "
                   "dead_peers=%llu retries_replayed=%llu "
                   "duplicates_dropped=%llu shm_fallbacks=%llu "
                   "journal_records=%llu heartbeats_sent=%llu\n",
                   static_cast<unsigned long long>(transport.handshakes),
                   static_cast<unsigned long long>(
                       transport.handshake_failures),
                   static_cast<unsigned long long>(transport.dead_peers),
                   static_cast<unsigned long long>(
                       transport.retries_replayed),
                   static_cast<unsigned long long>(
                       transport.duplicates_dropped),
                   static_cast<unsigned long long>(transport.shm_fallbacks),
                   static_cast<unsigned long long>(
                       transport.journal_records),
                   static_cast<unsigned long long>(
                       transport.heartbeats_sent));
    }
  } else {
    report = service::run_service(*batch, registry, options);
    service::write_results(std::cout, report);
    std::cerr << service::format_telemetry(report);
    if (show_stats) {
      print_cache_stats("[total]", report.cache);
    }
  }
  return 0;
}
