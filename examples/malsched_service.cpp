// malsched_service: batch scheduling service front door (v2 Scheduler,
// optionally sharded across worker processes).
//
//   ./examples/malsched_service <batch-file> [--threads N] [--repeat R]
//                               [--cache-capacity W] [--cache-ttl S]
//                               [--no-cache] [--queue-capacity N] [--fifo]
//                               [--shards N] [--workers host:port,...]
//                               [--replication R] [--stats]
//   ./examples/malsched_service --solvers
//
// Batch file format (see malsched/service/service.hpp):
//
//   instance small
//   processors 4
//   task 2.0 2 1.0
//   task 1.5 1 0.5
//   end
//   generate big heavy-tail-volumes 200 16 42
//   include common_instances.msb
//   weight 4                 # sticky: priority weight of later solves
//   deadline 0.5             # sticky: per-request latency budget (seconds);
//                            # 'deadline none' clears it
//   solve wdeq small
//   solve optimal small
//   solve wdeq big
//
// Relative `include` paths resolve against the batch file's directory.
// Per-request results go to stdout (deterministic: identical bytes for any
// --threads value AND any --shards value; `deadline` budgets are wall-clock
// dependent by nature); failures carry their typed error code.
// Latency/cache telemetry goes to stderr.  --cache-capacity counts weight
// units (~one per completion time), not entries; --cache-ttl ages entries
// out at lookup.  Admission is the weighted-priority queue by default —
// --fifo restores strict arrival order (the A/B the bench measures).
//
// --stats appends a cache-statistics block to the stderr telemetry: the
// full counter set (hits, misses, LRU evictions, TTL expirations, weight)
// for the run — per worker when sharded, so a single shard quietly aging
// out its arc (expired climbing) is visible instead of being summed away
// in the fleet aggregate.
//
// --shards N forks N worker processes and partitions the canonical key
// space across them with consistent hashing (docs/OPERATIONS.md): every
// worker runs its own Scheduler (--threads each) and its own cache shard.
// --replication R primes each instance on R ring owners so a worker death
// mid-run fails over — and, with the idempotency tokens of wire protocol
// v2, in-flight requests are safely *retried* on a replica.  The fork
// happens before any in-process scheduler exists, which is the documented
// spawning contract.
//
// --workers host:port,... is the multi-host variant of --shards: instead
// of forking, dial one `malsched_worker --listen` process per endpoint
// (one shard each, versioned handshake on connect).  Worker Scheduler
// flags are configured on each worker's own command line in this mode.
// When sharded, --stats also prints the router's transport counters
// (handshakes, dead peers, retries replayed) — the fleet-health view.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "malsched/net/socket.hpp"
#include "malsched/service/service.hpp"
#include "malsched/shard/router.hpp"

using namespace malsched;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <batch-file> [--threads N] [--repeat R] "
               "[--cache-capacity W] [--cache-ttl S] [--no-cache] "
               "[--queue-capacity N] [--fifo] [--shards N] "
               "[--workers host:port,...] [--replication R] "
               "[--data-plane auto|shm|socketpair] [--stats]\n"
               "       %s --solvers\n",
               prog, prog);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  const auto registry = service::SolverRegistry::with_default_solvers();

  if (argc >= 2 && std::strcmp(argv[1], "--solvers") == 0) {
    for (const auto& name : registry.names()) {
      const auto* info = registry.find(name);
      std::printf("%-18s %s%s\n", name.c_str(), info->description.c_str(),
                  info->cancellable ? "  [cancellable]" : "");
    }
    return 0;
  }
  if (argc < 2) {
    return usage(argv[0]);
  }

  service::ServiceOptions options;
  std::size_t shards = 0;       // 0 = single-process serving
  std::vector<net::Endpoint> tcp_workers;  // --workers: dial, don't fork
  std::size_t replication = 1;  // instance fan-out when sharded
  // --data-plane: how frames reach forked workers (shared-memory rings by
  // default, with automatic socketpair fallback; see router.hpp).
  shard::DataPlaneMode data_plane = shard::DataPlaneMode::Auto;
  bool show_stats = false;      // --stats: cache counter block on stderr
  // Numeric flags are range-checked: a stray "--threads -1" must not wrap
  // to four billion workers.
  const auto parse_count = [](const char* text, long max_value, long* out) {
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < 0 || value > max_value) {
      return false;
    }
    *out = value;
    return true;
  };
  for (int i = 2; i < argc; ++i) {
    long value = 0;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 256, &value)) {
        return usage(argv[0]);
      }
      options.threads = static_cast<unsigned>(value);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1000000, &value)) {
        return usage(argv[0]);
      }
      options.repeat = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1000000000, &value)) {
        return usage(argv[0]);
      }
      options.cache_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--cache-ttl") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const double seconds = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(seconds >= 0.0)) {
        return usage(argv[0]);
      }
      options.cache_ttl_seconds = seconds;
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1000000, &value) || value == 0) {
        return usage(argv[0]);
      }
      options.queue_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 256, &value)) {
        return usage(argv[0]);
      }
      shards = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      const auto endpoints = net::parse_endpoint_list(argv[++i]);
      if (!endpoints) {
        std::fprintf(stderr,
                     "bad --workers list '%s' (want host:port,host:port)\n",
                     argv[i]);
        return usage(argv[0]);
      }
      tcp_workers = *endpoints;
    } else if (std::strcmp(argv[i], "--replication") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 256, &value) || value == 0) {
        return usage(argv[0]);
      }
      replication = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--data-plane") == 0 && i + 1 < argc) {
      const char* plane = argv[++i];
      if (std::strcmp(plane, "auto") == 0) {
        data_plane = shard::DataPlaneMode::Auto;
      } else if (std::strcmp(plane, "shm") == 0) {
        data_plane = shard::DataPlaneMode::Shm;
      } else if (std::strcmp(plane, "socketpair") == 0) {
        data_plane = shard::DataPlaneMode::Socketpair;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      options.use_cache = false;
    } else if (std::strcmp(argv[i], "--fifo") == 0) {
      options.fifo_admission = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 66;
  }
  std::string error;
  service::BatchReadOptions read_options;
  read_options.base_dir =
      std::filesystem::path(argv[1]).parent_path().string();
  const auto batch = service::read_batch(in, &error, read_options);
  if (!batch) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 65;
  }

  const auto print_cache_stats = [](const char* label,
                                    const service::CacheStats& stats) {
    std::fprintf(stderr,
                 "cache%-9s: hits=%llu misses=%llu evictions=%llu "
                 "expired=%llu admitted=%llu rejected=%llu "
                 "entries=%zu weight=%zu/%zu\n",
                 label, static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.evictions),
                 static_cast<unsigned long long>(stats.expired),
                 static_cast<unsigned long long>(stats.admitted),
                 static_cast<unsigned long long>(stats.rejected),
                 stats.entries, stats.weight, stats.capacity);
  };

  service::ServiceReport report;
  if (shards > 0 || !tcp_workers.empty()) {
    // Sharded serving: fork (or dial) the worker fleet *now*, while this
    // process is still single-threaded, then stream the batch through the
    // ring.
    shard::RouterOptions router_options;
    router_options.shards = shards;
    router_options.tcp_workers = tcp_workers;
    router_options.replication = replication;
    router_options.data_plane = data_plane;
    router_options.worker = options;  // same options, served per worker
    shard::ShardRouter router(registry, router_options);
    shard::RouterRunOptions run_options;
    run_options.repeat = options.repeat;
    report = router.run(*batch, run_options);
    service::write_results(std::cout, report);
    std::cerr << service::format_telemetry(report);
    if (show_stats) {
      // Per-worker breakdown: the run's aggregate sums the shards, which
      // hides a single worker quietly aging out its arc via the TTL.
      for (std::size_t w = 0; w < router.shard_count(); ++w) {
        const auto stats = router.worker_cache_stats(w);
        const std::string label = "[" + std::to_string(w) + "]";
        if (stats) {
          print_cache_stats(label.c_str(), *stats);
        } else {
          std::fprintf(stderr, "cache%-9s: worker dead\n", label.c_str());
        }
      }
      // Data-plane counters: which plane each worker actually got (a shm
      // request that fell back shows up as "socketpair" + shm_fallbacks
      // below), how much crossed it, and whether the rings ever parked.
      for (std::size_t w = 0; w < router.shard_count(); ++w) {
        const std::string label = "[" + std::to_string(w) + "]";
        const auto plane = router.data_plane_stats(w);
        if (!plane) {
          std::fprintf(stderr, "plane%-9s: worker dead\n", label.c_str());
          continue;
        }
        std::fprintf(stderr,
                     "plane%-9s: %s frames_out=%llu bytes_out=%llu "
                     "frames_in=%llu bytes_in=%llu depth=%zu/%zu "
                     "sleeps=%llu/%llu wakes=%llu\n",
                     label.c_str(), plane->plane,
                     static_cast<unsigned long long>(plane->frames_out),
                     static_cast<unsigned long long>(plane->bytes_out),
                     static_cast<unsigned long long>(plane->frames_in),
                     static_cast<unsigned long long>(plane->bytes_in),
                     plane->request_depth, plane->response_depth,
                     static_cast<unsigned long long>(plane->producer_sleeps),
                     static_cast<unsigned long long>(plane->consumer_sleeps),
                     static_cast<unsigned long long>(plane->wakes));
      }
      // Transport counters: the fleet-health view — how many peers passed
      // the handshake, how many died, how much work was retried.
      const shard::TransportStats& transport = router.transport_stats();
      std::fprintf(stderr,
                   "transport      : handshakes=%llu handshake_failures=%llu "
                   "dead_peers=%llu retries_replayed=%llu "
                   "duplicates_dropped=%llu shm_fallbacks=%llu\n",
                   static_cast<unsigned long long>(transport.handshakes),
                   static_cast<unsigned long long>(
                       transport.handshake_failures),
                   static_cast<unsigned long long>(transport.dead_peers),
                   static_cast<unsigned long long>(
                       transport.retries_replayed),
                   static_cast<unsigned long long>(
                       transport.duplicates_dropped),
                   static_cast<unsigned long long>(transport.shm_fallbacks));
    }
  } else {
    report = service::run_service(*batch, registry, options);
    service::write_results(std::cout, report);
    std::cerr << service::format_telemetry(report);
    if (show_stats) {
      print_cache_stats("[total]", report.cache);
    }
  }
  return 0;
}
