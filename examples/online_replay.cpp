// online_replay: replay an arrival trace (file or synthesized) under the
// online replanning policies and price them against the clairvoyant
// offline baseline.
//
//   ./examples/online_replay <trace-file> [--policy NAME]
//   ./examples/online_replay --family F --tasks N --processors P --seed S
//                            [--horizon H] [--policy NAME] [--emit-trace]
//
// Trace files use the plain-text format of malsched/online/trace.hpp
// (`processors P` then `arrive <time> <volume> <width> <weight>` lines).
// --family synthesizes one instead: poisson-bursts, diurnal, or
// adversarial-spike.  --policy selects one of greedy-append, wsew-replan,
// wdeq-replan, exact-replan (default: all four).  --emit-trace writes the
// trace text to stdout and exits — the way to materialize a synthesized
// trace into a file for replaying elsewhere.
//
// Per policy, one line: ΣwC, makespan, events/replans, and the empirical
// competitive ratio against the offline baseline (exact optimum for small
// all-at-t=0 traces, a conservative lower bound otherwise — see
// docs/BENCHMARKS.md for the methodology).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "malsched/online/baseline.hpp"
#include "malsched/online/clock.hpp"
#include "malsched/online/replan.hpp"
#include "malsched/online/trace.hpp"
#include "malsched/support/rng.hpp"

using namespace malsched;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <trace-file> [--policy NAME]\n"
               "       %s --family F --tasks N --processors P --seed S\n"
               "          [--horizon H] [--policy NAME] [--emit-trace]\n"
               "families: poisson-bursts, diurnal, adversarial-spike\n"
               "policies: greedy-append, wsew-replan, wdeq-replan, "
               "exact-replan (default: all)\n",
               prog, prog);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string family_text;
  std::string policy_filter;
  long tasks = 20;
  double processors = 4.0;
  double horizon = 4.0;
  std::uint64_t seed = 1;
  bool emit_trace = false;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return false;
      }
      return true;
    };
    if (std::strcmp(argv[i], "--family") == 0) {
      if (!need_value("--family")) return usage(argv[0]);
      family_text = argv[++i];
    } else if (std::strcmp(argv[i], "--policy") == 0) {
      if (!need_value("--policy")) return usage(argv[0]);
      policy_filter = argv[++i];
    } else if (std::strcmp(argv[i], "--tasks") == 0) {
      if (!need_value("--tasks")) return usage(argv[0]);
      tasks = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--processors") == 0) {
      if (!need_value("--processors")) return usage(argv[0]);
      processors = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--horizon") == 0) {
      if (!need_value("--horizon")) return usage(argv[0]);
      horizon = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!need_value("--seed")) return usage(argv[0]);
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--emit-trace") == 0) {
      emit_trace = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (trace_path.empty()) {
      trace_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }

  std::optional<online::ArrivalTrace> trace;
  if (!family_text.empty()) {
    const auto family = online::trace_family_from_name(family_text);
    if (!family) {
      std::fprintf(stderr, "unknown trace family '%s'\n", family_text.c_str());
      return usage(argv[0]);
    }
    if (tasks <= 0 || tasks > 100000 || !(processors > 0.0) ||
        !(horizon >= 0.0)) {
      return usage(argv[0]);
    }
    online::TraceConfig config;
    config.family = *family;
    config.num_tasks = static_cast<std::size_t>(tasks);
    config.processors = processors;
    config.horizon = horizon;
    support::Rng rng(seed);
    trace = online::generate_trace(config, rng);
  } else if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 66;
    }
    std::string error;
    trace = online::read_trace(in, &error);
    if (!trace) {
      std::fprintf(stderr, "parse error: %s\n", error.c_str());
      return 65;
    }
  } else {
    return usage(argv[0]);
  }

  if (emit_trace) {
    std::cout << online::format_trace(*trace);
    return 0;
  }

  const auto baseline = online::offline_baseline(*trace);
  std::printf("%s  baseline %s = %.12g%s\n", trace->describe().c_str(),
              baseline.method.c_str(), baseline.objective,
              baseline.exact ? " (exact optimum)" : " (lower bound)");

  bool matched = false;
  for (auto& policy : online::all_replan_policies()) {
    if (!policy_filter.empty() && policy->name() != policy_filter) {
      continue;
    }
    matched = true;
    const auto run = online::replay(*trace, *policy);
    const double ratio =
        baseline.objective > 0.0 ? run.weighted_completion / baseline.objective
                                 : 1.0;
    std::printf(
        "%-14s  sum_wC=%.12g  makespan=%.6g  events=%zu replans=%zu  "
        "ratio %s %.6f\n",
        policy->name().c_str(), run.weighted_completion, run.makespan,
        run.events, run.replans, baseline.exact ? "=" : "<=", ratio);
  }
  if (!matched) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_filter.c_str());
    return usage(argv[0]);
  }
  return 0;
}
