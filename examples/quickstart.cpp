// Quickstart: build an instance, schedule it three ways (non-clairvoyant
// WDEQ, clairvoyant greedy, LP-optimal for small n), print the objective
// values, lower bounds and an ASCII Gantt chart.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "malsched/core/bounds.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/io.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/wdeq.hpp"

using namespace malsched;

int main() {
  // A node with 4 cores and five jobs: (volume, max cores, priority).
  const core::Instance instance(4.0, {
                                         {8.0, 2.0, 1.0},  // long, narrow
                                         {2.0, 4.0, 5.0},  // short, urgent
                                         {4.0, 4.0, 1.0},  // medium
                                         {1.0, 1.0, 2.0},  // tiny, sequential
                                         {6.0, 3.0, 0.5},  // long, low value
                                     });
  std::printf("Instance: %s\n\n%s\n", instance.describe().c_str(),
              core::format_instance(instance).c_str());

  // Lower bounds (Definitions 5/6 of the paper).
  std::printf("Squashed-area bound A(I) = %.4f\n",
              core::squashed_area_bound(instance));
  std::printf("Height bound       H(I) = %.4f\n\n",
              core::height_bound(instance));

  // Non-clairvoyant: WDEQ (Algorithm 1), guaranteed within 2x of optimal.
  const auto wdeq = core::run_wdeq(instance);
  std::printf("WDEQ (non-clairvoyant)   sum wC = %.4f\n",
              wdeq.schedule.weighted_completion(instance));

  // Clairvoyant: greedy with Smith's ratio order (Algorithm 3).
  const auto smith = core::smith_order(instance);
  const auto greedy = core::greedy_schedule(instance, smith);
  std::printf("Greedy (Smith order)     sum wC = %.4f\n",
              greedy.weighted_completion(instance));

  // Exact optimum via Corollary 1 order enumeration (small n only).
  const auto opt = core::optimal_by_enumeration(instance);
  std::printf("Optimal (LP enumeration) sum wC = %.4f\n\n", opt.objective);

  std::printf("WDEQ schedule (rows = tasks, darker = more processors):\n%s\n",
              core::render_gantt(instance, wdeq.schedule).c_str());
  std::printf("Greedy schedule:\n%s\n",
              core::render_gantt(instance, greedy).c_str());
  return 0;
}
