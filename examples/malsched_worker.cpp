// malsched_worker: standalone shard worker for the multi-host fleet.
//
//   ./examples/malsched_worker --listen host:port [--threads N]
//                              [--cache-capacity W] [--cache-ttl S]
//                              [--no-cache] [--queue-capacity N] [--fifo]
//                              [--once]
//
// Listens on host:port (port 0 = kernel-assigned; the bound port is
// printed either way) and serves one router connection at a time: each
// accepted connection is a full run_worker session — versioned `hello`
// handshake first, then the wire protocol until the router closes (EOF =
// drain) — with its own Scheduler and cache shard, configured by the same
// flags malsched_service takes.  A mismatched or garbage peer is rejected
// by the handshake and the worker goes back to accepting; it takes a
// SIGTERM/SIGKILL (or --once) to stop it.
//
// The first line on stdout is `listening <host> <port>`, flushed before
// the first accept, so launch scripts can scrape the ephemeral port.
// Everything else goes to stderr.
//
// This is the `--workers host:port,...` counterpart on the router side
// (malsched_service); deployment and failure semantics are described in
// docs/OPERATIONS.md, "Multi-host fleet".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "malsched/net/socket.hpp"
#include "malsched/service/service.hpp"
#include "malsched/shard/worker.hpp"

using namespace malsched;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --listen host:port [--threads N] "
               "[--cache-capacity W] [--cache-ttl S] [--no-cache] "
               "[--queue-capacity N] [--fifo] [--once]\n",
               prog);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  const auto registry = service::SolverRegistry::with_default_solvers();

  service::ServiceOptions options;
  std::string listen_text;
  bool once = false;
  const auto parse_count = [](const char* text, long max_value, long* out) {
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < 0 || value > max_value) {
      return false;
    }
    *out = value;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    long value = 0;
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_text = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 256, &value)) {
        return usage(argv[0]);
      }
      options.threads = static_cast<unsigned>(value);
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1000000000, &value)) {
        return usage(argv[0]);
      }
      options.cache_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--cache-ttl") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const double seconds = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(seconds >= 0.0)) {
        return usage(argv[0]);
      }
      options.cache_ttl_seconds = seconds;
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1000000, &value) || value == 0) {
        return usage(argv[0]);
      }
      options.queue_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      options.use_cache = false;
    } else if (std::strcmp(argv[i], "--fifo") == 0) {
      options.fifo_admission = true;
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (listen_text.empty()) {
    return usage(argv[0]);
  }
  const auto endpoint = net::parse_endpoint(listen_text);
  if (!endpoint) {
    std::fprintf(stderr, "bad --listen endpoint '%s' (want host:port)\n",
                 listen_text.c_str());
    return 64;
  }

  std::string error;
  std::uint16_t bound_port = 0;
  const int listen_fd = net::tcp_listen(*endpoint, &error, &bound_port);
  if (listen_fd < 0) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 71;
  }
  std::printf("listening %s %u\n", endpoint->host.c_str(),
              static_cast<unsigned>(bound_port));
  std::fflush(stdout);

  for (;;) {
    const int fd =
        net::tcp_accept(listen_fd, std::chrono::milliseconds(-1), &error);
    if (fd < 0) {
      std::fprintf(stderr, "accept failed: %s\n", error.c_str());
      return 71;
    }
    // One router at a time: the whole wire session runs on this thread.
    // run_worker greets, validates the peer's hello under a deadline, and
    // returns 2 for impostors — we just go back to accepting.
    const int rc = shard::run_worker(fd, registry, options);
    ::close(fd);
    if (rc == 2) {
      std::fprintf(stderr, "rejected a peer at the protocol handshake\n");
    } else if (rc != 0) {
      std::fprintf(stderr, "connection ended on a protocol error\n");
    }
    if (once) {
      return rc;
    }
  }
}
