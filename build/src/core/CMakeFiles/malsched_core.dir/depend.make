# Empty dependencies file for malsched_core.
# This may be replaced when dependencies are built.
