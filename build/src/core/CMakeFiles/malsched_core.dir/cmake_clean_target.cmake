file(REMOVE_RECURSE
  "libmalsched_core.a"
)
