
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/assignment.cpp" "src/core/CMakeFiles/malsched_core.dir/src/assignment.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/assignment.cpp.o.d"
  "/root/repo/src/core/src/bounds.cpp" "src/core/CMakeFiles/malsched_core.dir/src/bounds.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/bounds.cpp.o.d"
  "/root/repo/src/core/src/generators.cpp" "src/core/CMakeFiles/malsched_core.dir/src/generators.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/generators.cpp.o.d"
  "/root/repo/src/core/src/greedy.cpp" "src/core/CMakeFiles/malsched_core.dir/src/greedy.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/greedy.cpp.o.d"
  "/root/repo/src/core/src/homogeneous.cpp" "src/core/CMakeFiles/malsched_core.dir/src/homogeneous.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/homogeneous.cpp.o.d"
  "/root/repo/src/core/src/instance.cpp" "src/core/CMakeFiles/malsched_core.dir/src/instance.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/instance.cpp.o.d"
  "/root/repo/src/core/src/io.cpp" "src/core/CMakeFiles/malsched_core.dir/src/io.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/io.cpp.o.d"
  "/root/repo/src/core/src/makespan.cpp" "src/core/CMakeFiles/malsched_core.dir/src/makespan.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/makespan.cpp.o.d"
  "/root/repo/src/core/src/optimal.cpp" "src/core/CMakeFiles/malsched_core.dir/src/optimal.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/optimal.cpp.o.d"
  "/root/repo/src/core/src/order_lp.cpp" "src/core/CMakeFiles/malsched_core.dir/src/order_lp.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/order_lp.cpp.o.d"
  "/root/repo/src/core/src/orderings.cpp" "src/core/CMakeFiles/malsched_core.dir/src/orderings.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/orderings.cpp.o.d"
  "/root/repo/src/core/src/release_dates.cpp" "src/core/CMakeFiles/malsched_core.dir/src/release_dates.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/release_dates.cpp.o.d"
  "/root/repo/src/core/src/schedule.cpp" "src/core/CMakeFiles/malsched_core.dir/src/schedule.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/schedule.cpp.o.d"
  "/root/repo/src/core/src/water_filling.cpp" "src/core/CMakeFiles/malsched_core.dir/src/water_filling.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/water_filling.cpp.o.d"
  "/root/repo/src/core/src/wdeq.cpp" "src/core/CMakeFiles/malsched_core.dir/src/wdeq.cpp.o" "gcc" "src/core/CMakeFiles/malsched_core.dir/src/wdeq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/malsched_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/malsched_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/malsched_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/malsched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
