file(REMOVE_RECURSE
  "CMakeFiles/malsched_core.dir/src/assignment.cpp.o"
  "CMakeFiles/malsched_core.dir/src/assignment.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/bounds.cpp.o"
  "CMakeFiles/malsched_core.dir/src/bounds.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/generators.cpp.o"
  "CMakeFiles/malsched_core.dir/src/generators.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/greedy.cpp.o"
  "CMakeFiles/malsched_core.dir/src/greedy.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/homogeneous.cpp.o"
  "CMakeFiles/malsched_core.dir/src/homogeneous.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/instance.cpp.o"
  "CMakeFiles/malsched_core.dir/src/instance.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/io.cpp.o"
  "CMakeFiles/malsched_core.dir/src/io.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/makespan.cpp.o"
  "CMakeFiles/malsched_core.dir/src/makespan.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/optimal.cpp.o"
  "CMakeFiles/malsched_core.dir/src/optimal.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/order_lp.cpp.o"
  "CMakeFiles/malsched_core.dir/src/order_lp.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/orderings.cpp.o"
  "CMakeFiles/malsched_core.dir/src/orderings.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/release_dates.cpp.o"
  "CMakeFiles/malsched_core.dir/src/release_dates.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/schedule.cpp.o"
  "CMakeFiles/malsched_core.dir/src/schedule.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/water_filling.cpp.o"
  "CMakeFiles/malsched_core.dir/src/water_filling.cpp.o.d"
  "CMakeFiles/malsched_core.dir/src/wdeq.cpp.o"
  "CMakeFiles/malsched_core.dir/src/wdeq.cpp.o.d"
  "libmalsched_core.a"
  "libmalsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
