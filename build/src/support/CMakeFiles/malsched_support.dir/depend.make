# Empty dependencies file for malsched_support.
# This may be replaced when dependencies are built.
