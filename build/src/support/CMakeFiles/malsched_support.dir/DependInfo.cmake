
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/src/contracts.cpp" "src/support/CMakeFiles/malsched_support.dir/src/contracts.cpp.o" "gcc" "src/support/CMakeFiles/malsched_support.dir/src/contracts.cpp.o.d"
  "/root/repo/src/support/src/csv.cpp" "src/support/CMakeFiles/malsched_support.dir/src/csv.cpp.o" "gcc" "src/support/CMakeFiles/malsched_support.dir/src/csv.cpp.o.d"
  "/root/repo/src/support/src/log.cpp" "src/support/CMakeFiles/malsched_support.dir/src/log.cpp.o" "gcc" "src/support/CMakeFiles/malsched_support.dir/src/log.cpp.o.d"
  "/root/repo/src/support/src/rng.cpp" "src/support/CMakeFiles/malsched_support.dir/src/rng.cpp.o" "gcc" "src/support/CMakeFiles/malsched_support.dir/src/rng.cpp.o.d"
  "/root/repo/src/support/src/stats.cpp" "src/support/CMakeFiles/malsched_support.dir/src/stats.cpp.o" "gcc" "src/support/CMakeFiles/malsched_support.dir/src/stats.cpp.o.d"
  "/root/repo/src/support/src/table.cpp" "src/support/CMakeFiles/malsched_support.dir/src/table.cpp.o" "gcc" "src/support/CMakeFiles/malsched_support.dir/src/table.cpp.o.d"
  "/root/repo/src/support/src/thread_pool.cpp" "src/support/CMakeFiles/malsched_support.dir/src/thread_pool.cpp.o" "gcc" "src/support/CMakeFiles/malsched_support.dir/src/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
