file(REMOVE_RECURSE
  "CMakeFiles/malsched_support.dir/src/contracts.cpp.o"
  "CMakeFiles/malsched_support.dir/src/contracts.cpp.o.d"
  "CMakeFiles/malsched_support.dir/src/csv.cpp.o"
  "CMakeFiles/malsched_support.dir/src/csv.cpp.o.d"
  "CMakeFiles/malsched_support.dir/src/log.cpp.o"
  "CMakeFiles/malsched_support.dir/src/log.cpp.o.d"
  "CMakeFiles/malsched_support.dir/src/rng.cpp.o"
  "CMakeFiles/malsched_support.dir/src/rng.cpp.o.d"
  "CMakeFiles/malsched_support.dir/src/stats.cpp.o"
  "CMakeFiles/malsched_support.dir/src/stats.cpp.o.d"
  "CMakeFiles/malsched_support.dir/src/table.cpp.o"
  "CMakeFiles/malsched_support.dir/src/table.cpp.o.d"
  "CMakeFiles/malsched_support.dir/src/thread_pool.cpp.o"
  "CMakeFiles/malsched_support.dir/src/thread_pool.cpp.o.d"
  "libmalsched_support.a"
  "libmalsched_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malsched_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
