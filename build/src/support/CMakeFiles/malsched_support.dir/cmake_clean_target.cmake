file(REMOVE_RECURSE
  "libmalsched_support.a"
)
