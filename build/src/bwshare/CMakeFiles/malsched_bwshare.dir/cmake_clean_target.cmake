file(REMOVE_RECURSE
  "libmalsched_bwshare.a"
)
