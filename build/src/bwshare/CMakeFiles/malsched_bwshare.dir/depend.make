# Empty dependencies file for malsched_bwshare.
# This may be replaced when dependencies are built.
