file(REMOVE_RECURSE
  "CMakeFiles/malsched_bwshare.dir/src/network.cpp.o"
  "CMakeFiles/malsched_bwshare.dir/src/network.cpp.o.d"
  "libmalsched_bwshare.a"
  "libmalsched_bwshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malsched_bwshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
