# Empty dependencies file for malsched_lp.
# This may be replaced when dependencies are built.
