
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/src/exact_simplex.cpp" "src/lp/CMakeFiles/malsched_lp.dir/src/exact_simplex.cpp.o" "gcc" "src/lp/CMakeFiles/malsched_lp.dir/src/exact_simplex.cpp.o.d"
  "/root/repo/src/lp/src/model.cpp" "src/lp/CMakeFiles/malsched_lp.dir/src/model.cpp.o" "gcc" "src/lp/CMakeFiles/malsched_lp.dir/src/model.cpp.o.d"
  "/root/repo/src/lp/src/simplex.cpp" "src/lp/CMakeFiles/malsched_lp.dir/src/simplex.cpp.o" "gcc" "src/lp/CMakeFiles/malsched_lp.dir/src/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/malsched_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/malsched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
