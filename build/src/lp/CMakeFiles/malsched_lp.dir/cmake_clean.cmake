file(REMOVE_RECURSE
  "CMakeFiles/malsched_lp.dir/src/exact_simplex.cpp.o"
  "CMakeFiles/malsched_lp.dir/src/exact_simplex.cpp.o.d"
  "CMakeFiles/malsched_lp.dir/src/model.cpp.o"
  "CMakeFiles/malsched_lp.dir/src/model.cpp.o.d"
  "CMakeFiles/malsched_lp.dir/src/simplex.cpp.o"
  "CMakeFiles/malsched_lp.dir/src/simplex.cpp.o.d"
  "libmalsched_lp.a"
  "libmalsched_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malsched_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
