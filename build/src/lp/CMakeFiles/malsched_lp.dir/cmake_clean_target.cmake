file(REMOVE_RECURSE
  "libmalsched_lp.a"
)
