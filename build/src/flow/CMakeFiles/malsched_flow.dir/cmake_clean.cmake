file(REMOVE_RECURSE
  "CMakeFiles/malsched_flow.dir/src/max_flow.cpp.o"
  "CMakeFiles/malsched_flow.dir/src/max_flow.cpp.o.d"
  "libmalsched_flow.a"
  "libmalsched_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malsched_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
