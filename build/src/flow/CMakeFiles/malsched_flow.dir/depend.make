# Empty dependencies file for malsched_flow.
# This may be replaced when dependencies are built.
