file(REMOVE_RECURSE
  "libmalsched_flow.a"
)
