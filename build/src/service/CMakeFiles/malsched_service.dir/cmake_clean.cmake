file(REMOVE_RECURSE
  "CMakeFiles/malsched_service.dir/src/batch.cpp.o"
  "CMakeFiles/malsched_service.dir/src/batch.cpp.o.d"
  "CMakeFiles/malsched_service.dir/src/cache.cpp.o"
  "CMakeFiles/malsched_service.dir/src/cache.cpp.o.d"
  "CMakeFiles/malsched_service.dir/src/canonical.cpp.o"
  "CMakeFiles/malsched_service.dir/src/canonical.cpp.o.d"
  "CMakeFiles/malsched_service.dir/src/service.cpp.o"
  "CMakeFiles/malsched_service.dir/src/service.cpp.o.d"
  "CMakeFiles/malsched_service.dir/src/solver_registry.cpp.o"
  "CMakeFiles/malsched_service.dir/src/solver_registry.cpp.o.d"
  "libmalsched_service.a"
  "libmalsched_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malsched_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
