file(REMOVE_RECURSE
  "libmalsched_service.a"
)
