# Empty dependencies file for malsched_service.
# This may be replaced when dependencies are built.
