file(REMOVE_RECURSE
  "CMakeFiles/malsched_numeric.dir/src/bigint.cpp.o"
  "CMakeFiles/malsched_numeric.dir/src/bigint.cpp.o.d"
  "CMakeFiles/malsched_numeric.dir/src/rational.cpp.o"
  "CMakeFiles/malsched_numeric.dir/src/rational.cpp.o.d"
  "libmalsched_numeric.a"
  "libmalsched_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malsched_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
