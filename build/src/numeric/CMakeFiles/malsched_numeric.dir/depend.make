# Empty dependencies file for malsched_numeric.
# This may be replaced when dependencies are built.
