file(REMOVE_RECURSE
  "libmalsched_numeric.a"
)
