
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/src/bigint.cpp" "src/numeric/CMakeFiles/malsched_numeric.dir/src/bigint.cpp.o" "gcc" "src/numeric/CMakeFiles/malsched_numeric.dir/src/bigint.cpp.o.d"
  "/root/repo/src/numeric/src/rational.cpp" "src/numeric/CMakeFiles/malsched_numeric.dir/src/rational.cpp.o" "gcc" "src/numeric/CMakeFiles/malsched_numeric.dir/src/rational.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/malsched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
