file(REMOVE_RECURSE
  "CMakeFiles/malsched_sim.dir/src/engine.cpp.o"
  "CMakeFiles/malsched_sim.dir/src/engine.cpp.o.d"
  "CMakeFiles/malsched_sim.dir/src/metrics.cpp.o"
  "CMakeFiles/malsched_sim.dir/src/metrics.cpp.o.d"
  "CMakeFiles/malsched_sim.dir/src/policy.cpp.o"
  "CMakeFiles/malsched_sim.dir/src/policy.cpp.o.d"
  "libmalsched_sim.a"
  "libmalsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
