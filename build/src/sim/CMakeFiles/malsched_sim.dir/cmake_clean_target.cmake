file(REMOVE_RECURSE
  "libmalsched_sim.a"
)
