# Empty dependencies file for malsched_sim.
# This may be replaced when dependencies are built.
