file(REMOVE_RECURSE
  "CMakeFiles/malsched_bench_common.dir/common/bench_common.cpp.o"
  "CMakeFiles/malsched_bench_common.dir/common/bench_common.cpp.o.d"
  "libmalsched_bench_common.a"
  "libmalsched_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malsched_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
