file(REMOVE_RECURSE
  "libmalsched_bench_common.a"
)
