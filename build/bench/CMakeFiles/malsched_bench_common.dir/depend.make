# Empty dependencies file for malsched_bench_common.
# This may be replaced when dependencies are built.
