# Empty dependencies file for bench_table1_landscape.
# This may be replaced when dependencies are built.
