file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_landscape.dir/bench_table1_landscape.cpp.o"
  "CMakeFiles/bench_table1_landscape.dir/bench_table1_landscape.cpp.o.d"
  "bench_table1_landscape"
  "bench_table1_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
