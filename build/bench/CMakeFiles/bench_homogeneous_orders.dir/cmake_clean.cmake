file(REMOVE_RECURSE
  "CMakeFiles/bench_homogeneous_orders.dir/bench_homogeneous_orders.cpp.o"
  "CMakeFiles/bench_homogeneous_orders.dir/bench_homogeneous_orders.cpp.o.d"
  "bench_homogeneous_orders"
  "bench_homogeneous_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_homogeneous_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
