# Empty dependencies file for bench_homogeneous_orders.
# This may be replaced when dependencies are built.
