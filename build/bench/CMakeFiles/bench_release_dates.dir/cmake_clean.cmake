file(REMOVE_RECURSE
  "CMakeFiles/bench_release_dates.dir/bench_release_dates.cpp.o"
  "CMakeFiles/bench_release_dates.dir/bench_release_dates.cpp.o.d"
  "bench_release_dates"
  "bench_release_dates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_release_dates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
