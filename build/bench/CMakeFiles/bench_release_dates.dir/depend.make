# Empty dependencies file for bench_release_dates.
# This may be replaced when dependencies are built.
