# Empty dependencies file for bench_greedy_orders.
# This may be replaced when dependencies are built.
