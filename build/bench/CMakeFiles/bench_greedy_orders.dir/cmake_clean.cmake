file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy_orders.dir/bench_greedy_orders.cpp.o"
  "CMakeFiles/bench_greedy_orders.dir/bench_greedy_orders.cpp.o.d"
  "bench_greedy_orders"
  "bench_greedy_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
