
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_preemptions.cpp" "bench/CMakeFiles/bench_preemptions.dir/bench_preemptions.cpp.o" "gcc" "bench/CMakeFiles/bench_preemptions.dir/bench_preemptions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/malsched_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bwshare/CMakeFiles/malsched_bwshare.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/malsched_service.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/malsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/malsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/malsched_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/malsched_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/malsched_support.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/malsched_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
