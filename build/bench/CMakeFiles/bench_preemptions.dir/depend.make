# Empty dependencies file for bench_preemptions.
# This may be replaced when dependencies are built.
