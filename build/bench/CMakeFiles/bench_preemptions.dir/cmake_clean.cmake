file(REMOVE_RECURSE
  "CMakeFiles/bench_preemptions.dir/bench_preemptions.cpp.o"
  "CMakeFiles/bench_preemptions.dir/bench_preemptions.cpp.o.d"
  "bench_preemptions"
  "bench_preemptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preemptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
