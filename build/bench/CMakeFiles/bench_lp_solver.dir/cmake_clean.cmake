file(REMOVE_RECURSE
  "CMakeFiles/bench_lp_solver.dir/bench_lp_solver.cpp.o"
  "CMakeFiles/bench_lp_solver.dir/bench_lp_solver.cpp.o.d"
  "bench_lp_solver"
  "bench_lp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
