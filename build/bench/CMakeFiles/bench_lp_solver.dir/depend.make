# Empty dependencies file for bench_lp_solver.
# This may be replaced when dependencies are built.
