file(REMOVE_RECURSE
  "CMakeFiles/bench_bandwidth_sharing.dir/bench_bandwidth_sharing.cpp.o"
  "CMakeFiles/bench_bandwidth_sharing.dir/bench_bandwidth_sharing.cpp.o.d"
  "bench_bandwidth_sharing"
  "bench_bandwidth_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bandwidth_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
