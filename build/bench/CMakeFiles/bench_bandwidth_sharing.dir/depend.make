# Empty dependencies file for bench_bandwidth_sharing.
# This may be replaced when dependencies are built.
