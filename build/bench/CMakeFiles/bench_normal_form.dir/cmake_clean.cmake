file(REMOVE_RECURSE
  "CMakeFiles/bench_normal_form.dir/bench_normal_form.cpp.o"
  "CMakeFiles/bench_normal_form.dir/bench_normal_form.cpp.o.d"
  "bench_normal_form"
  "bench_normal_form.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_normal_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
