# Empty dependencies file for bench_normal_form.
# This may be replaced when dependencies are built.
