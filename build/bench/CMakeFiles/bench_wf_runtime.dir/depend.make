# Empty dependencies file for bench_wf_runtime.
# This may be replaced when dependencies are built.
