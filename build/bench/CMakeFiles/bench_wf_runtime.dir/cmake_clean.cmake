file(REMOVE_RECURSE
  "CMakeFiles/bench_wf_runtime.dir/bench_wf_runtime.cpp.o"
  "CMakeFiles/bench_wf_runtime.dir/bench_wf_runtime.cpp.o.d"
  "bench_wf_runtime"
  "bench_wf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
