# Empty dependencies file for bench_greedy_vs_optimal.
# This may be replaced when dependencies are built.
