file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy_vs_optimal.dir/bench_greedy_vs_optimal.cpp.o"
  "CMakeFiles/bench_greedy_vs_optimal.dir/bench_greedy_vs_optimal.cpp.o.d"
  "bench_greedy_vs_optimal"
  "bench_greedy_vs_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_vs_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
