# Empty dependencies file for bench_wdeq_ratio.
# This may be replaced when dependencies are built.
