file(REMOVE_RECURSE
  "CMakeFiles/bench_wdeq_ratio.dir/bench_wdeq_ratio.cpp.o"
  "CMakeFiles/bench_wdeq_ratio.dir/bench_wdeq_ratio.cpp.o.d"
  "bench_wdeq_ratio"
  "bench_wdeq_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wdeq_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
