file(REMOVE_RECURSE
  "CMakeFiles/bench_conjecture13.dir/bench_conjecture13.cpp.o"
  "CMakeFiles/bench_conjecture13.dir/bench_conjecture13.cpp.o.d"
  "bench_conjecture13"
  "bench_conjecture13.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conjecture13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
