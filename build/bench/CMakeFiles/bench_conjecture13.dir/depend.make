# Empty dependencies file for bench_conjecture13.
# This may be replaced when dependencies are built.
