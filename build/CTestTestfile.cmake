# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/support")
subdirs("src/numeric")
subdirs("src/flow")
subdirs("src/lp")
subdirs("src/core")
subdirs("src/sim")
subdirs("src/bwshare")
subdirs("src/service")
subdirs("tests")
subdirs("examples")
subdirs("bench")
