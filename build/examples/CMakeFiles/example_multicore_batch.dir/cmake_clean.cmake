file(REMOVE_RECURSE
  "CMakeFiles/example_multicore_batch.dir/multicore_batch.cpp.o"
  "CMakeFiles/example_multicore_batch.dir/multicore_batch.cpp.o.d"
  "multicore_batch"
  "multicore_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multicore_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
