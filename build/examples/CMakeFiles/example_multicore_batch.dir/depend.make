# Empty dependencies file for example_multicore_batch.
# This may be replaced when dependencies are built.
