file(REMOVE_RECURSE
  "CMakeFiles/example_conjecture_explorer.dir/conjecture_explorer.cpp.o"
  "CMakeFiles/example_conjecture_explorer.dir/conjecture_explorer.cpp.o.d"
  "conjecture_explorer"
  "conjecture_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_conjecture_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
