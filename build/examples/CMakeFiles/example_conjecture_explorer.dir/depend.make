# Empty dependencies file for example_conjecture_explorer.
# This may be replaced when dependencies are built.
