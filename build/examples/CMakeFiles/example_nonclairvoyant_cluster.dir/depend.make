# Empty dependencies file for example_nonclairvoyant_cluster.
# This may be replaced when dependencies are built.
