file(REMOVE_RECURSE
  "CMakeFiles/example_nonclairvoyant_cluster.dir/nonclairvoyant_cluster.cpp.o"
  "CMakeFiles/example_nonclairvoyant_cluster.dir/nonclairvoyant_cluster.cpp.o.d"
  "nonclairvoyant_cluster"
  "nonclairvoyant_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nonclairvoyant_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
