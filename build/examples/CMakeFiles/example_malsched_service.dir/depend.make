# Empty dependencies file for example_malsched_service.
# This may be replaced when dependencies are built.
