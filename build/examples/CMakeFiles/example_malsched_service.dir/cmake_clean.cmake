file(REMOVE_RECURSE
  "CMakeFiles/example_malsched_service.dir/malsched_service.cpp.o"
  "CMakeFiles/example_malsched_service.dir/malsched_service.cpp.o.d"
  "malsched_service"
  "malsched_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_malsched_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
