file(REMOVE_RECURSE
  "CMakeFiles/example_bandwidth_sharing.dir/bandwidth_sharing.cpp.o"
  "CMakeFiles/example_bandwidth_sharing.dir/bandwidth_sharing.cpp.o.d"
  "bandwidth_sharing"
  "bandwidth_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bandwidth_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
