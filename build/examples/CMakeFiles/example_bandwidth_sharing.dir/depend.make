# Empty dependencies file for example_bandwidth_sharing.
# This may be replaced when dependencies are built.
