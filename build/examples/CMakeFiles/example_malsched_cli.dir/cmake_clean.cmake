file(REMOVE_RECURSE
  "CMakeFiles/example_malsched_cli.dir/malsched_cli.cpp.o"
  "CMakeFiles/example_malsched_cli.dir/malsched_cli.cpp.o.d"
  "malsched_cli"
  "malsched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_malsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
