# Empty dependencies file for example_malsched_cli.
# This may be replaced when dependencies are built.
