# Empty dependencies file for core_test_fixtures.
# This may be replaced when dependencies are built.
