file(REMOVE_RECURSE
  "CMakeFiles/core_test_fixtures.dir/core/test_fixtures.cpp.o"
  "CMakeFiles/core_test_fixtures.dir/core/test_fixtures.cpp.o.d"
  "core_test_fixtures"
  "core_test_fixtures.pdb"
  "core_test_fixtures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_fixtures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
