# Empty dependencies file for sim_test_online.
# This may be replaced when dependencies are built.
