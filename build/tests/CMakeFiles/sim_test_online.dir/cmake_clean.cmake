file(REMOVE_RECURSE
  "CMakeFiles/sim_test_online.dir/sim/test_online.cpp.o"
  "CMakeFiles/sim_test_online.dir/sim/test_online.cpp.o.d"
  "sim_test_online"
  "sim_test_online.pdb"
  "sim_test_online[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
