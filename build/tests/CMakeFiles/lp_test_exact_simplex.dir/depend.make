# Empty dependencies file for lp_test_exact_simplex.
# This may be replaced when dependencies are built.
