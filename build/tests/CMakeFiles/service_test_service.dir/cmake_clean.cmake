file(REMOVE_RECURSE
  "CMakeFiles/service_test_service.dir/service/test_service.cpp.o"
  "CMakeFiles/service_test_service.dir/service/test_service.cpp.o.d"
  "service_test_service"
  "service_test_service.pdb"
  "service_test_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_test_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
