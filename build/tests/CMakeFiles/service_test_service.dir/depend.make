# Empty dependencies file for service_test_service.
# This may be replaced when dependencies are built.
