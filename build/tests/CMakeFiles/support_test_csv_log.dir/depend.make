# Empty dependencies file for support_test_csv_log.
# This may be replaced when dependencies are built.
