file(REMOVE_RECURSE
  "CMakeFiles/support_test_csv_log.dir/support/test_csv_log.cpp.o"
  "CMakeFiles/support_test_csv_log.dir/support/test_csv_log.cpp.o.d"
  "support_test_csv_log"
  "support_test_csv_log.pdb"
  "support_test_csv_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test_csv_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
