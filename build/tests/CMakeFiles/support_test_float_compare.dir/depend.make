# Empty dependencies file for support_test_float_compare.
# This may be replaced when dependencies are built.
