file(REMOVE_RECURSE
  "CMakeFiles/support_test_float_compare.dir/support/test_float_compare.cpp.o"
  "CMakeFiles/support_test_float_compare.dir/support/test_float_compare.cpp.o.d"
  "support_test_float_compare"
  "support_test_float_compare.pdb"
  "support_test_float_compare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test_float_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
