# Empty dependencies file for core_test_instance.
# This may be replaced when dependencies are built.
