file(REMOVE_RECURSE
  "CMakeFiles/core_test_instance.dir/core/test_instance.cpp.o"
  "CMakeFiles/core_test_instance.dir/core/test_instance.cpp.o.d"
  "core_test_instance"
  "core_test_instance.pdb"
  "core_test_instance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
