# Empty dependencies file for core_test_makespan.
# This may be replaced when dependencies are built.
