file(REMOVE_RECURSE
  "CMakeFiles/core_test_makespan.dir/core/test_makespan.cpp.o"
  "CMakeFiles/core_test_makespan.dir/core/test_makespan.cpp.o.d"
  "core_test_makespan"
  "core_test_makespan.pdb"
  "core_test_makespan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
