# Empty dependencies file for core_test_assignment.
# This may be replaced when dependencies are built.
