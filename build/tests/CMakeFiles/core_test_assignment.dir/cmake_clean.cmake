file(REMOVE_RECURSE
  "CMakeFiles/core_test_assignment.dir/core/test_assignment.cpp.o"
  "CMakeFiles/core_test_assignment.dir/core/test_assignment.cpp.o.d"
  "core_test_assignment"
  "core_test_assignment.pdb"
  "core_test_assignment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
