file(REMOVE_RECURSE
  "CMakeFiles/core_test_order_lp.dir/core/test_order_lp.cpp.o"
  "CMakeFiles/core_test_order_lp.dir/core/test_order_lp.cpp.o.d"
  "core_test_order_lp"
  "core_test_order_lp.pdb"
  "core_test_order_lp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_order_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
