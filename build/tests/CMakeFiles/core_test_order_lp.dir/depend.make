# Empty dependencies file for core_test_order_lp.
# This may be replaced when dependencies are built.
