# Empty dependencies file for service_test_registry.
# This may be replaced when dependencies are built.
