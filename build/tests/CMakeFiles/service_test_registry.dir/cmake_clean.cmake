file(REMOVE_RECURSE
  "CMakeFiles/service_test_registry.dir/service/test_registry.cpp.o"
  "CMakeFiles/service_test_registry.dir/service/test_registry.cpp.o.d"
  "service_test_registry"
  "service_test_registry.pdb"
  "service_test_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_test_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
