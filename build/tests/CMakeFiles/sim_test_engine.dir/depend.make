# Empty dependencies file for sim_test_engine.
# This may be replaced when dependencies are built.
