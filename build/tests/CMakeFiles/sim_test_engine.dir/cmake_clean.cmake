file(REMOVE_RECURSE
  "CMakeFiles/sim_test_engine.dir/sim/test_engine.cpp.o"
  "CMakeFiles/sim_test_engine.dir/sim/test_engine.cpp.o.d"
  "sim_test_engine"
  "sim_test_engine.pdb"
  "sim_test_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
