# Empty dependencies file for lp_test_simplex_stress.
# This may be replaced when dependencies are built.
