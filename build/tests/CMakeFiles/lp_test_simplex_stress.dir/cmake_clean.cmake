file(REMOVE_RECURSE
  "CMakeFiles/lp_test_simplex_stress.dir/lp/test_simplex_stress.cpp.o"
  "CMakeFiles/lp_test_simplex_stress.dir/lp/test_simplex_stress.cpp.o.d"
  "lp_test_simplex_stress"
  "lp_test_simplex_stress.pdb"
  "lp_test_simplex_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_test_simplex_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
