# Empty dependencies file for bwshare_test_network.
# This may be replaced when dependencies are built.
