file(REMOVE_RECURSE
  "CMakeFiles/bwshare_test_network.dir/bwshare/test_network.cpp.o"
  "CMakeFiles/bwshare_test_network.dir/bwshare/test_network.cpp.o.d"
  "bwshare_test_network"
  "bwshare_test_network.pdb"
  "bwshare_test_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwshare_test_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
