file(REMOVE_RECURSE
  "CMakeFiles/lp_test_simplex.dir/lp/test_simplex.cpp.o"
  "CMakeFiles/lp_test_simplex.dir/lp/test_simplex.cpp.o.d"
  "lp_test_simplex"
  "lp_test_simplex.pdb"
  "lp_test_simplex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_test_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
