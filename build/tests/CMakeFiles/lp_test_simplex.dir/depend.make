# Empty dependencies file for lp_test_simplex.
# This may be replaced when dependencies are built.
