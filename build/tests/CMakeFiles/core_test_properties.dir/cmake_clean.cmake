file(REMOVE_RECURSE
  "CMakeFiles/core_test_properties.dir/core/test_properties.cpp.o"
  "CMakeFiles/core_test_properties.dir/core/test_properties.cpp.o.d"
  "core_test_properties"
  "core_test_properties.pdb"
  "core_test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
