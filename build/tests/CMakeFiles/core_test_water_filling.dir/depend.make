# Empty dependencies file for core_test_water_filling.
# This may be replaced when dependencies are built.
