file(REMOVE_RECURSE
  "CMakeFiles/core_test_water_filling.dir/core/test_water_filling.cpp.o"
  "CMakeFiles/core_test_water_filling.dir/core/test_water_filling.cpp.o.d"
  "core_test_water_filling"
  "core_test_water_filling.pdb"
  "core_test_water_filling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_water_filling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
