# Empty dependencies file for support_test_matrix.
# This may be replaced when dependencies are built.
