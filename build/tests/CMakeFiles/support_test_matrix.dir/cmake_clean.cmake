file(REMOVE_RECURSE
  "CMakeFiles/support_test_matrix.dir/support/test_matrix.cpp.o"
  "CMakeFiles/support_test_matrix.dir/support/test_matrix.cpp.o.d"
  "support_test_matrix"
  "support_test_matrix.pdb"
  "support_test_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
