file(REMOVE_RECURSE
  "CMakeFiles/support_test_rng.dir/support/test_rng.cpp.o"
  "CMakeFiles/support_test_rng.dir/support/test_rng.cpp.o.d"
  "support_test_rng"
  "support_test_rng.pdb"
  "support_test_rng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
