# Empty dependencies file for support_test_rng.
# This may be replaced when dependencies are built.
