# Empty dependencies file for core_test_greedy.
# This may be replaced when dependencies are built.
