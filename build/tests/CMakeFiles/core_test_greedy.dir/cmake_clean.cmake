file(REMOVE_RECURSE
  "CMakeFiles/core_test_greedy.dir/core/test_greedy.cpp.o"
  "CMakeFiles/core_test_greedy.dir/core/test_greedy.cpp.o.d"
  "core_test_greedy"
  "core_test_greedy.pdb"
  "core_test_greedy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
