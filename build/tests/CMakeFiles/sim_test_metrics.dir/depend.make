# Empty dependencies file for sim_test_metrics.
# This may be replaced when dependencies are built.
