file(REMOVE_RECURSE
  "CMakeFiles/sim_test_metrics.dir/sim/test_metrics.cpp.o"
  "CMakeFiles/sim_test_metrics.dir/sim/test_metrics.cpp.o.d"
  "sim_test_metrics"
  "sim_test_metrics.pdb"
  "sim_test_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
