file(REMOVE_RECURSE
  "CMakeFiles/support_test_stats.dir/support/test_stats.cpp.o"
  "CMakeFiles/support_test_stats.dir/support/test_stats.cpp.o.d"
  "support_test_stats"
  "support_test_stats.pdb"
  "support_test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
