# Empty dependencies file for support_test_stats.
# This may be replaced when dependencies are built.
