file(REMOVE_RECURSE
  "CMakeFiles/core_test_bounds.dir/core/test_bounds.cpp.o"
  "CMakeFiles/core_test_bounds.dir/core/test_bounds.cpp.o.d"
  "core_test_bounds"
  "core_test_bounds.pdb"
  "core_test_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
