# Empty dependencies file for core_test_bounds.
# This may be replaced when dependencies are built.
