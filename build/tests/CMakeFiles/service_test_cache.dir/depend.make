# Empty dependencies file for service_test_cache.
# This may be replaced when dependencies are built.
