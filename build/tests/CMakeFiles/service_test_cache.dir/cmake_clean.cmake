file(REMOVE_RECURSE
  "CMakeFiles/service_test_cache.dir/service/test_cache.cpp.o"
  "CMakeFiles/service_test_cache.dir/service/test_cache.cpp.o.d"
  "service_test_cache"
  "service_test_cache.pdb"
  "service_test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
