# Empty dependencies file for core_test_structural_properties.
# This may be replaced when dependencies are built.
