# Empty dependencies file for numeric_test_rational.
# This may be replaced when dependencies are built.
