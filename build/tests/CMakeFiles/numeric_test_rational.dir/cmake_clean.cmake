file(REMOVE_RECURSE
  "CMakeFiles/numeric_test_rational.dir/numeric/test_rational.cpp.o"
  "CMakeFiles/numeric_test_rational.dir/numeric/test_rational.cpp.o.d"
  "numeric_test_rational"
  "numeric_test_rational.pdb"
  "numeric_test_rational[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_test_rational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
