# Empty dependencies file for core_test_io.
# This may be replaced when dependencies are built.
