file(REMOVE_RECURSE
  "CMakeFiles/core_test_io.dir/core/test_io.cpp.o"
  "CMakeFiles/core_test_io.dir/core/test_io.cpp.o.d"
  "core_test_io"
  "core_test_io.pdb"
  "core_test_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
