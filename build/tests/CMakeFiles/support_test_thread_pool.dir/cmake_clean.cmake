file(REMOVE_RECURSE
  "CMakeFiles/support_test_thread_pool.dir/support/test_thread_pool.cpp.o"
  "CMakeFiles/support_test_thread_pool.dir/support/test_thread_pool.cpp.o.d"
  "support_test_thread_pool"
  "support_test_thread_pool.pdb"
  "support_test_thread_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test_thread_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
