# Empty dependencies file for support_test_thread_pool.
# This may be replaced when dependencies are built.
