# Empty dependencies file for numeric_test_bigint.
# This may be replaced when dependencies are built.
