file(REMOVE_RECURSE
  "CMakeFiles/numeric_test_bigint.dir/numeric/test_bigint.cpp.o"
  "CMakeFiles/numeric_test_bigint.dir/numeric/test_bigint.cpp.o.d"
  "numeric_test_bigint"
  "numeric_test_bigint.pdb"
  "numeric_test_bigint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_test_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
