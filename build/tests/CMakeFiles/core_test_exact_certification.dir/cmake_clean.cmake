file(REMOVE_RECURSE
  "CMakeFiles/core_test_exact_certification.dir/core/test_exact_certification.cpp.o"
  "CMakeFiles/core_test_exact_certification.dir/core/test_exact_certification.cpp.o.d"
  "core_test_exact_certification"
  "core_test_exact_certification.pdb"
  "core_test_exact_certification[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_exact_certification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
