# Empty dependencies file for core_test_exact_certification.
# This may be replaced when dependencies are built.
