file(REMOVE_RECURSE
  "CMakeFiles/service_test_canonical.dir/service/test_canonical.cpp.o"
  "CMakeFiles/service_test_canonical.dir/service/test_canonical.cpp.o.d"
  "service_test_canonical"
  "service_test_canonical.pdb"
  "service_test_canonical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_test_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
