# Empty dependencies file for service_test_canonical.
# This may be replaced when dependencies are built.
