file(REMOVE_RECURSE
  "CMakeFiles/core_test_homogeneous.dir/core/test_homogeneous.cpp.o"
  "CMakeFiles/core_test_homogeneous.dir/core/test_homogeneous.cpp.o.d"
  "core_test_homogeneous"
  "core_test_homogeneous.pdb"
  "core_test_homogeneous[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
