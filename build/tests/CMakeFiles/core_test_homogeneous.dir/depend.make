# Empty dependencies file for core_test_homogeneous.
# This may be replaced when dependencies are built.
