# Empty dependencies file for support_test_table.
# This may be replaced when dependencies are built.
