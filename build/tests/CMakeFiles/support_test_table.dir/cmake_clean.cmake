file(REMOVE_RECURSE
  "CMakeFiles/support_test_table.dir/support/test_table.cpp.o"
  "CMakeFiles/support_test_table.dir/support/test_table.cpp.o.d"
  "support_test_table"
  "support_test_table.pdb"
  "support_test_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
