file(REMOVE_RECURSE
  "CMakeFiles/core_test_generators.dir/core/test_generators.cpp.o"
  "CMakeFiles/core_test_generators.dir/core/test_generators.cpp.o.d"
  "core_test_generators"
  "core_test_generators.pdb"
  "core_test_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
