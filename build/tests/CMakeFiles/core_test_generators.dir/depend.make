# Empty dependencies file for core_test_generators.
# This may be replaced when dependencies are built.
