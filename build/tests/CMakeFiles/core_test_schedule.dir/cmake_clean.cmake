file(REMOVE_RECURSE
  "CMakeFiles/core_test_schedule.dir/core/test_schedule.cpp.o"
  "CMakeFiles/core_test_schedule.dir/core/test_schedule.cpp.o.d"
  "core_test_schedule"
  "core_test_schedule.pdb"
  "core_test_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
