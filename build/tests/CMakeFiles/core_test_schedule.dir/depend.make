# Empty dependencies file for core_test_schedule.
# This may be replaced when dependencies are built.
