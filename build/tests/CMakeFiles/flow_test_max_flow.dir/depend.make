# Empty dependencies file for flow_test_max_flow.
# This may be replaced when dependencies are built.
