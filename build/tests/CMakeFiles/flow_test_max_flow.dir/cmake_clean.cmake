file(REMOVE_RECURSE
  "CMakeFiles/flow_test_max_flow.dir/flow/test_max_flow.cpp.o"
  "CMakeFiles/flow_test_max_flow.dir/flow/test_max_flow.cpp.o.d"
  "flow_test_max_flow"
  "flow_test_max_flow.pdb"
  "flow_test_max_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_test_max_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
