file(REMOVE_RECURSE
  "CMakeFiles/service_test_batch.dir/service/test_batch.cpp.o"
  "CMakeFiles/service_test_batch.dir/service/test_batch.cpp.o.d"
  "service_test_batch"
  "service_test_batch.pdb"
  "service_test_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_test_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
