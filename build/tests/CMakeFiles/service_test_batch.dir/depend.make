# Empty dependencies file for service_test_batch.
# This may be replaced when dependencies are built.
