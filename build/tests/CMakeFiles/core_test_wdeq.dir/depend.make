# Empty dependencies file for core_test_wdeq.
# This may be replaced when dependencies are built.
