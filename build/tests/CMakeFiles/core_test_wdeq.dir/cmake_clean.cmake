file(REMOVE_RECURSE
  "CMakeFiles/core_test_wdeq.dir/core/test_wdeq.cpp.o"
  "CMakeFiles/core_test_wdeq.dir/core/test_wdeq.cpp.o.d"
  "core_test_wdeq"
  "core_test_wdeq.pdb"
  "core_test_wdeq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_wdeq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
