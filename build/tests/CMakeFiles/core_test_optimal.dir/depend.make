# Empty dependencies file for core_test_optimal.
# This may be replaced when dependencies are built.
