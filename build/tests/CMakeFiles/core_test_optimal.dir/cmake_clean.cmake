file(REMOVE_RECURSE
  "CMakeFiles/core_test_optimal.dir/core/test_optimal.cpp.o"
  "CMakeFiles/core_test_optimal.dir/core/test_optimal.cpp.o.d"
  "core_test_optimal"
  "core_test_optimal.pdb"
  "core_test_optimal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
