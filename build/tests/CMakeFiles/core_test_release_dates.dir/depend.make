# Empty dependencies file for core_test_release_dates.
# This may be replaced when dependencies are built.
