file(REMOVE_RECURSE
  "CMakeFiles/core_test_release_dates.dir/core/test_release_dates.cpp.o"
  "CMakeFiles/core_test_release_dates.dir/core/test_release_dates.cpp.o.d"
  "core_test_release_dates"
  "core_test_release_dates.pdb"
  "core_test_release_dates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_release_dates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
